package simulate

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/seq"
)

// SimRead is a simulated read together with its ground truth: the error-free
// bases, the 0-based genome position of the fragment, and whether the read
// was sampled from the reverse strand.
type SimRead struct {
	Read seq.Read
	// True holds the error-free base sequence in read orientation, so
	// Read.Seq[i] != True[i] exactly at the injected error positions.
	True []byte
	Pos  int
	RC   bool
}

// Errors returns the positions at which the called read disagrees with the
// truth (N counts as an error when it masks a true base).
func (s SimRead) Errors() []int {
	var out []int
	for i := range s.True {
		if s.Read.Seq[i] != s.True[i] {
			out = append(out, i)
		}
	}
	return out
}

// ReadSimConfig controls Illumina-style read simulation.
type ReadSimConfig struct {
	N     int           // number of reads
	Model *MisreadModel // per-position misread matrices; length = read length
	// QualityNoise jitters the emitted Phred score around the true one
	// (standard deviation in Phred units), modelling the Dohm et al.
	// observation that scores are imperfect estimates.
	QualityNoise float64
	// AmbiguousRate converts a called base to 'N' with this probability
	// (and records quality 2), emulating low-confidence base calls.
	AmbiguousRate float64
	// BothStrands samples reads from the reverse strand half the time.
	BothStrands bool
	// IDPrefix names reads IDPrefix:<index>.
	IDPrefix string
}

// SimulateReads samples cfg.N uniformly placed reads from the genome and
// pushes each base through the misread model, recording ground truth. The
// emitted quality score encodes the model's true per-position error
// probability (plus optional noise), so quality-aware methods see the same
// signal real base callers provide.
func SimulateReads(genome []byte, cfg ReadSimConfig, rng *rand.Rand) ([]SimRead, error) {
	phred, prefix, err := readSimPrelude(genome, cfg)
	if err != nil {
		return nil, err
	}
	out := make([]SimRead, 0, cfg.N)
	for n := 0; n < cfg.N; n++ {
		out = append(out, simulateOne(genome, cfg, phred, prefix, n, rng))
	}
	return out, nil
}

// readSimPrelude validates the configuration and derives the pieces shared
// by the serial and parallel samplers: the per-position baseline Phred
// scores and the read-ID prefix. Keeping it shared guarantees the two
// samplers can only diverge in their documented RNG streams.
func readSimPrelude(genome []byte, cfg ReadSimConfig) (phred []byte, prefix string, err error) {
	L := cfg.Model.Len()
	if L <= 0 || L > len(genome) {
		return nil, "", fmt.Errorf("simulate: read length %d incompatible with genome length %d", L, len(genome))
	}
	prefix = cfg.IDPrefix
	if prefix == "" {
		prefix = "sim"
	}
	phred = make([]byte, L)
	for i := range phred {
		phred[i] = phredFromProb(cfg.Model.PositionErrorRate(i))
	}
	return phred, prefix, nil
}

// simulateOne draws a single read: placement, strand, per-base misreads,
// quality jitter and ambiguous-base masking, all from rng.
func simulateOne(genome []byte, cfg ReadSimConfig, phred []byte, prefix string, n int, rng *rand.Rand) SimRead {
	L := cfg.Model.Len()
	pos := rng.Intn(len(genome) - L + 1)
	truth := make([]byte, L)
	copy(truth, genome[pos:pos+L])
	rc := cfg.BothStrands && rng.Intn(2) == 1
	if rc {
		truth = seq.ReverseComplement(truth)
	}
	called := make([]byte, L)
	qual := make([]byte, L)
	for i := 0; i < L; i++ {
		a, ok := seq.BaseFromChar(truth[i])
		if !ok {
			// Reference N (only possible with user genomes): call as-is.
			called[i] = truth[i]
			qual[i] = 2
			continue
		}
		b := cfg.Model.drawCall(i, a, rng)
		called[i] = b.Char()
		q := float64(phred[i])
		if cfg.QualityNoise > 0 {
			q += rng.NormFloat64() * cfg.QualityNoise
		}
		qual[i] = clampQ(q)
		if cfg.AmbiguousRate > 0 && rng.Float64() < cfg.AmbiguousRate {
			called[i] = 'N'
			qual[i] = 2
		}
	}
	return SimRead{
		Read: seq.Read{ID: fmt.Sprintf("%s:%d", prefix, n), Seq: called, Qual: qual},
		True: truth,
		Pos:  pos,
		RC:   rc,
	}
}

// SimulateReadsParallel is the read-chunk producer of the sharded spectrum
// engine's ingestion path: it samples cfg.N reads with `workers` goroutines
// (<= 0 selects GOMAXPROCS). Each read draws from its own RNG stream derived
// from (seed, read index), so the output is byte-identical for every worker
// count — though it differs from the single-stream SimulateReads sequence
// produced by the same seed.
func SimulateReadsParallel(genome []byte, cfg ReadSimConfig, seed int64, workers int) ([]SimRead, error) {
	phred, prefix, err := readSimPrelude(genome, cfg)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]SimRead, cfg.N)
	var wg sync.WaitGroup
	chunk := (cfg.N + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, min((w+1)*chunk, cfg.N)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			src := &splitmixSource{}
			rng := rand.New(src)
			for n := lo; n < hi; n++ {
				// Each read gets its own SplitMix64 stream keyed by
				// (seed, read index). The key is scrambled through the
				// finalizer: raw keys would form an arithmetic progression
				// with the generator's own increment, making adjacent
				// streams shifted copies of one sequence. Seeding is O(1)
				// against the ~5 KB, ~600-step default lagged-Fibonacci
				// source — seeding would otherwise dominate short-read
				// sampling.
				src.state = splitmixFinalize(uint64(seed) + uint64(n)*0x9E3779B97F4A7C15)
				out[n] = simulateOne(genome, cfg, phred, prefix, n, rng)
			}
		}(lo, hi)
	}
	wg.Wait()
	return out, nil
}

// splitmixSource is the SplitMix64 generator as a rand.Source64: 8 bytes of
// state and O(1) seeding, backing the per-read streams of the parallel
// sampler.
type splitmixSource struct{ state uint64 }

func (s *splitmixSource) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	return splitmixFinalize(s.state)
}

// splitmixFinalize is the SplitMix64 output mixing function.
func splitmixFinalize(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

func (s *splitmixSource) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed finalizes the raw seed so that arithmetically related seeds do not
// start shifted copies of one stream (see the derivation note above).
func (s *splitmixSource) Seed(seed int64) { s.state = splitmixFinalize(uint64(seed)) }

func phredFromProb(pe float64) byte {
	if pe <= 0 {
		return 60
	}
	q := -10 * math.Log10(pe)
	return clampQ(q)
}

func clampQ(q float64) byte {
	if q < 2 {
		return 2
	}
	if q > 60 {
		return 60
	}
	return byte(q + 0.5)
}

// Reads extracts the seq.Read views from simulated reads.
func Reads(sim []SimRead) []seq.Read {
	out := make([]seq.Read, len(sim))
	for i := range sim {
		out[i] = sim[i].Read
	}
	return out
}

// CoverageReadCount converts a target coverage into a read count for the
// given genome and read lengths (Cov = nL/|G|, §2.1).
func CoverageReadCount(genomeLen, readLen int, coverage float64) int {
	return int(coverage * float64(genomeLen) / float64(readLen))
}

// Dataset bundles a simulated dataset with its provenance for the
// experiment tables.
type Dataset struct {
	Name      string
	Genome    []byte
	Repeats   *RepeatGenome // nil when the genome has no designed repeats
	Sim       []SimRead
	ReadLen   int
	Coverage  float64
	ErrorRate float64 // model mean substitution rate
}

// DatasetSpec describes one row of Table 2.1 / Table 3.1 at a chosen scale.
type DatasetSpec struct {
	Name          string
	GenomeLen     int
	RepeatFrac    float64 // 0 for low-repeat genomes
	ReadLen       int
	Coverage      float64
	ErrorRate     float64
	Bias          PlatformBias
	QualityNoise  float64
	AmbiguousRate float64
	Seed          int64
	// Workers > 1 parallelizes read synthesis through
	// SimulateReadsParallel; <= 0 (and 1) keeps the historical
	// single-stream sampler, whose output for a given seed differs from
	// the per-read-stream parallel sampler.
	Workers int
}

// BuildDataset realizes a spec: genome (with repeats if requested), misread
// model, and simulated reads with ground truth.
func BuildDataset(spec DatasetSpec) (*Dataset, error) {
	rng := rand.New(rand.NewSource(spec.Seed))
	ds := &Dataset{
		Name:      spec.Name,
		ReadLen:   spec.ReadLen,
		Coverage:  spec.Coverage,
		ErrorRate: spec.ErrorRate,
	}
	if spec.RepeatFrac > 0 {
		rg, err := GenomeWithRepeats(spec.GenomeLen, RepeatLadder(spec.GenomeLen, spec.RepeatFrac), MaizeProfile, rng)
		if err != nil {
			return nil, err
		}
		ds.Genome = rg.Seq
		ds.Repeats = rg
	} else {
		g, err := RandomGenome(spec.GenomeLen, MaizeProfile, rng)
		if err != nil {
			return nil, err
		}
		ds.Genome = g
	}
	bias := spec.Bias
	if bias.Name == "" {
		bias = EcoliBias
	}
	model := IlluminaModel(spec.ReadLen, spec.ErrorRate, bias)
	cfg := ReadSimConfig{
		N:             CoverageReadCount(len(ds.Genome), spec.ReadLen, spec.Coverage),
		Model:         model,
		QualityNoise:  spec.QualityNoise,
		AmbiguousRate: spec.AmbiguousRate,
		BothStrands:   true,
		IDPrefix:      spec.Name,
	}
	var sim []SimRead
	var err error
	if spec.Workers > 1 {
		sim, err = SimulateReadsParallel(ds.Genome, cfg, spec.Seed, spec.Workers)
	} else {
		sim, err = SimulateReads(ds.Genome, cfg, rng)
	}
	if err != nil {
		return nil, err
	}
	ds.Sim = sim
	return ds, nil
}

// Chapter2Specs returns the six Table 2.1 datasets scaled so that genome
// lengths are scale bases for the E. coli stand-in (the paper's 4.64 Mb) and
// proportionally smaller for the A. sp stand-in (3.6 Mb).
func Chapter2Specs(scale int) []DatasetSpec {
	asp := int(float64(scale) * 3.6 / 4.64)
	return []DatasetSpec{
		{Name: "D1", GenomeLen: scale, ReadLen: 36, Coverage: 160, ErrorRate: 0.006, Bias: EcoliBias, QualityNoise: 2, Seed: 101},
		{Name: "D2", GenomeLen: scale, ReadLen: 36, Coverage: 80, ErrorRate: 0.006, Bias: EcoliBias, QualityNoise: 2, Seed: 102},
		{Name: "D3", GenomeLen: asp, ReadLen: 36, Coverage: 173, ErrorRate: 0.015, Bias: AspBias, QualityNoise: 2, Seed: 103},
		{Name: "D4", GenomeLen: asp, ReadLen: 36, Coverage: 40, ErrorRate: 0.015, Bias: AspBias, QualityNoise: 2, Seed: 104},
		{Name: "D5", GenomeLen: scale, ReadLen: 47, Coverage: 71, ErrorRate: 0.033, Bias: EcoliBias, QualityNoise: 2, Seed: 105},
		{Name: "D6", GenomeLen: scale, ReadLen: 101, Coverage: 193, ErrorRate: 0.022, Bias: EcoliBias, QualityNoise: 2, AmbiguousRate: 0.002, Seed: 106},
	}
}

// Chapter3Specs returns the Table 3.1 ladder at the given scale: three
// synthetic repeat designs at 80x, the repeat-rich genome stand-ins, and the
// low-repeat E. coli-like control at 160x.
func Chapter3Specs(scale int) []DatasetSpec {
	return []DatasetSpec{
		{Name: "D1", GenomeLen: scale, RepeatFrac: 0.20, ReadLen: 36, Coverage: 80, ErrorRate: 0.006, Bias: EcoliBias, QualityNoise: 2, Seed: 301},
		{Name: "D2", GenomeLen: scale, RepeatFrac: 0.50, ReadLen: 36, Coverage: 80, ErrorRate: 0.006, Bias: EcoliBias, QualityNoise: 2, Seed: 302},
		{Name: "D3", GenomeLen: scale, RepeatFrac: 0.80, ReadLen: 36, Coverage: 80, ErrorRate: 0.006, Bias: EcoliBias, QualityNoise: 2, Seed: 303},
		{Name: "D4-NM", GenomeLen: scale * 2, RepeatFrac: 0.30, ReadLen: 36, Coverage: 80, ErrorRate: 0.006, Bias: EcoliBias, QualityNoise: 2, Seed: 304},
		{Name: "D5-maize", GenomeLen: scale / 2, RepeatFrac: 0.80, ReadLen: 36, Coverage: 80, ErrorRate: 0.006, Bias: EcoliBias, QualityNoise: 2, Seed: 305},
		{Name: "D6-ecoli", GenomeLen: scale * 4, RepeatFrac: 0, ReadLen: 36, Coverage: 160, ErrorRate: 0.006, Bias: EcoliBias, QualityNoise: 2, Seed: 306},
	}
}
