package simulate

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/seq"
)

// Taxon identifies a leaf species and its ancestry in the synthetic
// taxonomic hierarchy.
type Taxon struct {
	Phylum  int
	Genus   int
	Species int
}

// Species is one synthetic organism: its 16S-like marker sequence and its
// relative abundance in the sample.
type Species struct {
	Taxon     Taxon
	Marker    []byte
	Abundance float64
}

// Taxonomy is a three-rank hierarchy (phylum > genus > species) of synthetic
// organisms whose 16S-like markers diverge by a controlled amount at each
// rank, standing in for the mouse-gut 16S pool of §4.5 while providing the
// ground-truth labels the paper's real data lacks.
type Taxonomy struct {
	Root    []byte
	Species []Species
	// Divergence gives the per-rank substitution fractions actually used.
	Divergence [3]float64
}

// TaxonomyConfig controls synthetic taxonomy construction.
type TaxonomyConfig struct {
	Phyla            int
	GeneraPerPhylum  int
	SpeciesPerGenus  int
	MarkerLen        int     // full 16S rRNA is ~1500-1600 bp (§4.1)
	PhylumDivergence float64 // fraction of positions mutated root->phylum
	GenusDivergence  float64 // phylum->genus
	SpeciesDiv       float64 // genus->species
	// AbundanceSkew is the Zipf exponent for species abundances; 0 gives a
	// uniform community, larger values make a few species dominate (the
	// "clouding out of low abundance species" motivation of Chapter 4).
	AbundanceSkew float64
}

// DefaultTaxonomyConfig mirrors 16S biology: ~15% divergence between phyla,
// ~7% between genera, ~2.5% between species, 1.5 kb markers.
func DefaultTaxonomyConfig() TaxonomyConfig {
	return TaxonomyConfig{
		Phyla:            4,
		GeneraPerPhylum:  3,
		SpeciesPerGenus:  4,
		MarkerLen:        1500,
		PhylumDivergence: 0.15,
		GenusDivergence:  0.07,
		SpeciesDiv:       0.025,
		AbundanceSkew:    1.0,
	}
}

// NewTaxonomy builds the hierarchy by mutating an ancestral marker at each
// rank.
func NewTaxonomy(cfg TaxonomyConfig, rng *rand.Rand) (*Taxonomy, error) {
	if cfg.Phyla <= 0 || cfg.GeneraPerPhylum <= 0 || cfg.SpeciesPerGenus <= 0 {
		return nil, fmt.Errorf("simulate: empty taxonomy config %+v", cfg)
	}
	root, err := RandomGenome(cfg.MarkerLen, UniformProfile, rng)
	if err != nil {
		return nil, err
	}
	tax := &Taxonomy{
		Root:       root,
		Divergence: [3]float64{cfg.PhylumDivergence, cfg.GenusDivergence, cfg.SpeciesDiv},
	}
	rank := 0
	for p := 0; p < cfg.Phyla; p++ {
		phylumSeq := mutate(root, cfg.PhylumDivergence, rng)
		for g := 0; g < cfg.GeneraPerPhylum; g++ {
			genusSeq := mutate(phylumSeq, cfg.GenusDivergence, rng)
			for s := 0; s < cfg.SpeciesPerGenus; s++ {
				sp := Species{
					Taxon:  Taxon{Phylum: p, Genus: p*cfg.GeneraPerPhylum + g, Species: rank},
					Marker: mutate(genusSeq, cfg.SpeciesDiv, rng),
				}
				rank++
				tax.Species = append(tax.Species, sp)
			}
		}
	}
	// Zipf-like abundances over a random species permutation.
	perm := rng.Perm(len(tax.Species))
	total := 0.0
	for i := range tax.Species {
		w := 1.0 / math.Pow(float64(i+1), cfg.AbundanceSkew)
		tax.Species[perm[i]].Abundance = w
		total += w
	}
	for i := range tax.Species {
		tax.Species[i].Abundance /= total
	}
	return tax, nil
}

// mutate substitutes a `fraction` of positions with a different random base.
func mutate(s []byte, fraction float64, rng *rand.Rand) []byte {
	out := append([]byte(nil), s...)
	n := int(fraction*float64(len(s)) + 0.5)
	for i := 0; i < n; i++ {
		pos := rng.Intn(len(out))
		old, _ := seq.BaseFromChar(out[pos])
		nb := seq.Base(rng.Intn(3))
		if nb >= old {
			nb++
		}
		out[pos] = nb.Char()
	}
	return out
}

// MetaRead is a 454-like metagenomic read with its ground-truth taxon.
type MetaRead struct {
	Read  seq.Read
	Taxon Taxon
}

// MetagenomeConfig controls 454-style read sampling from a taxonomy.
type MetagenomeConfig struct {
	N         int
	MeanLen   int     // 454 Titanium averages ~400 bp (§4)
	SDLen     int     // read length spread
	MinLen    int     // discard shorter fragments (Table 4.1 min ~167)
	ErrorRate float64 // substitution rate; 454 indels are out of scope (§2)
	IDPrefix  string
	// RegionStart/RegionLen restrict sampling to one marker window,
	// emulating amplicon sequencing of a hypervariable region; reads from
	// the same species then mutually overlap, the regime in which
	// cluster-vs-taxonomy agreement (ARI) is well defined. Zero RegionLen
	// samples the whole marker (shotgun-style, the Table 4.1 regime).
	RegionStart int
	RegionLen   int
}

// DefaultMetagenomeConfig mirrors Table 4.1's length statistics.
func DefaultMetagenomeConfig(n int) MetagenomeConfig {
	return MetagenomeConfig{N: n, MeanLen: 375, SDLen: 80, MinLen: 167, ErrorRate: 0.005, IDPrefix: "meta"}
}

// SampleMetagenome draws reads species-proportionally to abundance, with
// 454-like variable lengths, from random positions on the species marker.
func SampleMetagenome(tax *Taxonomy, cfg MetagenomeConfig, rng *rand.Rand) ([]MetaRead, error) {
	if len(tax.Species) == 0 {
		return nil, fmt.Errorf("simulate: taxonomy has no species")
	}
	cum := make([]float64, len(tax.Species))
	acc := 0.0
	for i, sp := range tax.Species {
		acc += sp.Abundance
		cum[i] = acc
	}
	out := make([]MetaRead, 0, cfg.N)
	for n := 0; n < cfg.N; n++ {
		sp := &tax.Species[pickCum(cum, rng)]
		region := sp.Marker
		if cfg.RegionLen > 0 {
			start := min(cfg.RegionStart, len(sp.Marker)-1)
			end := min(start+cfg.RegionLen, len(sp.Marker))
			region = sp.Marker[start:end]
		}
		L := cfg.MeanLen + int(rng.NormFloat64()*float64(cfg.SDLen))
		if L < cfg.MinLen {
			L = cfg.MinLen
		}
		if L > len(region) {
			L = len(region)
		}
		pos := rng.Intn(len(region) - L + 1)
		bases := make([]byte, L)
		copy(bases, region[pos:pos+L])
		for i := range bases {
			if rng.Float64() < cfg.ErrorRate {
				old, _ := seq.BaseFromChar(bases[i])
				nb := seq.Base(rng.Intn(3))
				if nb >= old {
					nb++
				}
				bases[i] = nb.Char()
			}
		}
		out = append(out, MetaRead{
			Read:  seq.Read{ID: fmt.Sprintf("%s:%d", cfg.IDPrefix, n), Seq: bases},
			Taxon: sp.Taxon,
		})
	}
	return out, nil
}

func pickCum(cum []float64, rng *rand.Rand) int {
	u := rng.Float64() * cum[len(cum)-1]
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// MetaReads extracts the raw reads.
func MetaReads(mr []MetaRead) []seq.Read {
	out := make([]seq.Read, len(mr))
	for i := range mr {
		out[i] = mr[i].Read
	}
	return out
}
