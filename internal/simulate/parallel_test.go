package simulate

import (
	"testing"
)

// TestSimulateReadsParallelWorkerInvariance checks the read-chunk producer's
// determinism contract: per-read RNG streams make the sampled reads
// byte-identical for every worker count.
func TestSimulateReadsParallelWorkerInvariance(t *testing.T) {
	genome := make([]byte, 5000)
	for i := range genome {
		genome[i] = "ACGT"[(i*7+i/13)%4]
	}
	cfg := ReadSimConfig{
		N: 1500, Model: UniformModel(36, 0.02), BothStrands: true,
		QualityNoise: 2, AmbiguousRate: 0.003,
	}
	want, err := SimulateReadsParallel(genome, cfg, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5, 16, 0} {
		got, err := SimulateReadsParallel(genome, cfg, 7, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d reads want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i].Read.ID != want[i].Read.ID ||
				string(got[i].Read.Seq) != string(want[i].Read.Seq) ||
				string(got[i].Read.Qual) != string(want[i].Read.Qual) ||
				string(got[i].True) != string(want[i].True) ||
				got[i].Pos != want[i].Pos || got[i].RC != want[i].RC {
				t.Fatalf("workers=%d: read %d differs from serial sample", workers, i)
			}
		}
	}
}

// TestSplitmixStreamsNotShifted guards the stream derivation against the
// arithmetic-progression trap: if per-read starting states differed by the
// generator's own increment, read n's j-th draw would equal read n+1's
// (j-1)-th draw, lag-correlating every adjacent read pair.
func TestSplitmixStreamsNotShifted(t *testing.T) {
	const seed, draws = 5, 16
	for n := uint64(0); n < 64; n++ {
		a := &splitmixSource{state: splitmixFinalize(seed + n*0x9E3779B97F4A7C15)}
		b := &splitmixSource{state: splitmixFinalize(seed + (n+1)*0x9E3779B97F4A7C15)}
		var sa, sb [draws]uint64
		for j := range sa {
			sa[j], sb[j] = a.Uint64(), b.Uint64()
		}
		for lag := 1; lag < 4; lag++ {
			shifted := true
			for j := lag; j < draws; j++ {
				if sa[j] != sb[j-lag] {
					shifted = false
					break
				}
			}
			if shifted {
				t.Fatalf("read %d and %d streams are shifted copies at lag %d", n, n+1, lag)
			}
		}
	}
}

// TestSimulateReadsParallelDistinctStreams guards against a degenerate seed
// derivation: consecutive reads must not repeat placements wholesale.
func TestSimulateReadsParallelDistinctStreams(t *testing.T) {
	genome := make([]byte, 5000)
	for i := range genome {
		genome[i] = "ACGT"[(i*11+i/17)%4]
	}
	sim, err := SimulateReadsParallel(genome, ReadSimConfig{N: 200, Model: UniformModel(36, 0)}, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	positions := map[int]int{}
	for _, s := range sim {
		positions[s.Pos]++
	}
	if len(positions) < 100 {
		t.Fatalf("only %d distinct placements across 200 reads", len(positions))
	}
}
