package simulate

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/seq"
)

func TestUniformModelRates(t *testing.T) {
	m := UniformModel(36, 0.01)
	if got := m.MeanErrorRate(); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("MeanErrorRate = %v want 0.01", got)
	}
	for i := 0; i < 36; i++ {
		if got := m.PositionErrorRate(i); math.Abs(got-0.01) > 1e-12 {
			t.Errorf("position %d rate %v", i, got)
		}
	}
}

func TestIlluminaModelShape(t *testing.T) {
	m := IlluminaModel(50, 0.02, EcoliBias)
	if got := m.MeanErrorRate(); math.Abs(got-0.02) > 1e-9 {
		t.Errorf("MeanErrorRate = %v want 0.02", got)
	}
	// Errors cluster toward the 3' end.
	if m.PositionErrorRate(49) < 3*m.PositionErrorRate(0) {
		t.Errorf("no 3' ramp: pos0=%v pos49=%v", m.PositionErrorRate(0), m.PositionErrorRate(49))
	}
	// Rows are stochastic.
	for i := range m.Matrices {
		for a := 0; a < 4; a++ {
			sum := 0.0
			for b := 0; b < 4; b++ {
				sum += m.Matrices[i][a][b]
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("pos %d row %d sums to %v", i, a, sum)
			}
		}
	}
}

func TestKmerModelFromReadModel(t *testing.T) {
	rm := IlluminaModel(36, 0.01, EcoliBias)
	km, err := KmerModelFromReadModel(rm, 13)
	if err != nil {
		t.Fatal(err)
	}
	if km.K != 13 || len(km.Q) != 13 {
		t.Fatalf("bad kmer model shape: %+v", km)
	}
	// Later kmer positions average over later read positions, so the
	// error rate still ramps upward.
	if km.Q[12].ErrorRate() <= km.Q[0].ErrorRate() {
		t.Errorf("kmer model lost the positional ramp")
	}
	if _, err := KmerModelFromReadModel(rm, 37); err == nil {
		t.Error("expected error for k > L")
	}
}

func TestMisreadProb(t *testing.T) {
	km := NewUniformKmerModel(3, 0.03)
	same := seq.MustPack("ACG")
	if got := km.MisreadProb(same, same); math.Abs(got-math.Pow(0.97, 3)) > 1e-12 {
		t.Errorf("self misread prob = %v", got)
	}
	one := seq.MustPack("ACT")
	want := math.Pow(0.97, 2) * 0.01
	if got := km.MisreadProb(same, one); math.Abs(got-want) > 1e-12 {
		t.Errorf("1-sub misread prob = %v want %v", got, want)
	}
}

func TestSimulateReadsTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	genome, _ := RandomGenome(5000, UniformProfile, rng)
	model := UniformModel(36, 0.02)
	sim, err := SimulateReads(genome, ReadSimConfig{N: 2000, Model: model, BothStrands: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(sim) != 2000 {
		t.Fatalf("got %d reads", len(sim))
	}
	totalErr, totalBases := 0, 0
	sawRC := false
	for _, s := range sim {
		if len(s.Read.Seq) != 36 || len(s.True) != 36 || len(s.Read.Qual) != 36 {
			t.Fatalf("bad read shape: %+v", s.Read)
		}
		// Truth matches genome at the recorded position/strand.
		frag := genome[s.Pos : s.Pos+36]
		want := frag
		if s.RC {
			want = seq.ReverseComplement(frag)
			sawRC = true
		}
		if string(s.True) != string(want) {
			t.Fatalf("truth does not match genome at pos %d rc=%v", s.Pos, s.RC)
		}
		totalErr += len(s.Errors())
		totalBases += 36
	}
	if !sawRC {
		t.Error("no reverse-strand reads sampled")
	}
	rate := float64(totalErr) / float64(totalBases)
	if rate < 0.015 || rate > 0.025 {
		t.Errorf("realized error rate %.4f want ~0.02", rate)
	}
}

func TestSimulateReadsAmbiguous(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	genome, _ := RandomGenome(2000, UniformProfile, rng)
	sim, err := SimulateReads(genome, ReadSimConfig{N: 500, Model: UniformModel(30, 0.01), AmbiguousRate: 0.05}, rng)
	if err != nil {
		t.Fatal(err)
	}
	ns := 0
	for _, s := range sim {
		for i, ch := range s.Read.Seq {
			if ch == 'N' {
				ns++
				if s.Read.Qual[i] != 2 {
					t.Fatalf("N base has quality %d want 2", s.Read.Qual[i])
				}
			}
		}
	}
	rate := float64(ns) / float64(500*30)
	if rate < 0.03 || rate > 0.07 {
		t.Errorf("N rate %.3f want ~0.05", rate)
	}
}

func TestSimulateReadsErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	genome, _ := RandomGenome(20, UniformProfile, rng)
	if _, err := SimulateReads(genome, ReadSimConfig{N: 1, Model: UniformModel(36, 0.01)}, rng); err == nil {
		t.Error("expected error: read longer than genome")
	}
}

func TestQualityEncodesErrorRate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	genome, _ := RandomGenome(1000, UniformProfile, rng)
	model := IlluminaModel(40, 0.02, EcoliBias)
	sim, err := SimulateReads(genome, ReadSimConfig{N: 50, Model: model}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Without noise the emitted quality equals the Phred of the model rate,
	// so 3' qualities are strictly lower than 5' qualities.
	q0, qL := sim[0].Read.Qual[0], sim[0].Read.Qual[39]
	if qL >= q0 {
		t.Errorf("3' quality %d not below 5' quality %d", qL, q0)
	}
}

func TestCoverageReadCount(t *testing.T) {
	if got := CoverageReadCount(1000000, 36, 80); got != 2222222 {
		t.Errorf("CoverageReadCount = %d", got)
	}
}

func TestBuildDatasetSpecs(t *testing.T) {
	specs := Chapter2Specs(20000)
	if len(specs) != 6 {
		t.Fatalf("want 6 chapter-2 specs")
	}
	ds, err := BuildDataset(specs[1]) // D2: 80x, 0.6% err
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Genome) != 20000 {
		t.Errorf("genome length %d", len(ds.Genome))
	}
	wantReads := CoverageReadCount(20000, 36, 80)
	if len(ds.Sim) != wantReads {
		t.Errorf("reads %d want %d", len(ds.Sim), wantReads)
	}
	// Chapter 3 repeat dataset carries its repeat map.
	specs3 := Chapter3Specs(20000)
	ds3, err := BuildDataset(specs3[2]) // 80% repeats
	if err != nil {
		t.Fatal(err)
	}
	if ds3.Repeats == nil || ds3.Repeats.RepeatFraction < 0.4 {
		t.Errorf("expected repeat-rich genome, got %+v", ds3.Repeats)
	}
}

func TestBuildDatasetDeterministic(t *testing.T) {
	spec := Chapter2Specs(5000)[0]
	a, err := BuildDataset(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildDataset(spec)
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Genome) != string(b.Genome) {
		t.Error("same seed produced different genomes")
	}
	if string(a.Sim[0].Read.Seq) != string(b.Sim[0].Read.Seq) {
		t.Error("same seed produced different reads")
	}
}
