package simulate

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/seq"
)

// Matrix4 is a row-stochastic 4x4 matrix: entry [a][b] is the probability
// that true base a is called as base b.
type Matrix4 [4][4]float64

// Normalize rescales each row to sum to one.
func (m *Matrix4) Normalize() {
	for a := 0; a < 4; a++ {
		sum := 0.0
		for b := 0; b < 4; b++ {
			sum += m[a][b]
		}
		if sum <= 0 {
			m[a] = [4]float64{}
			m[a][a] = 1
			continue
		}
		for b := 0; b < 4; b++ {
			m[a][b] /= sum
		}
	}
}

// ErrorRate returns the average off-diagonal mass assuming equal base usage.
func (m Matrix4) ErrorRate() float64 {
	e := 0.0
	for a := 0; a < 4; a++ {
		e += 1 - m[a][a]
	}
	return e / 4
}

// MisreadModel is the paper's M = (M_1 .. M_L): one misread matrix per read
// position (§3.4.1). Position indices are 0-based here.
type MisreadModel struct {
	Matrices []Matrix4
}

// Len returns the read length the model describes.
func (m *MisreadModel) Len() int { return len(m.Matrices) }

// PositionErrorRate returns the expected substitution probability at read
// position i for a uniformly random true base.
func (m *MisreadModel) PositionErrorRate(i int) float64 {
	return m.Matrices[i].ErrorRate()
}

// MeanErrorRate averages PositionErrorRate over the read.
func (m *MisreadModel) MeanErrorRate() float64 {
	sum := 0.0
	for i := range m.Matrices {
		sum += m.PositionErrorRate(i)
	}
	return sum / float64(len(m.Matrices))
}

// UniformModel errs at every position with probability pe, distributing the
// error mass equally over the three alternatives — the tUED/wUED model of
// §3.4.2 (Eq. 3.1).
func UniformModel(readLen int, pe float64) *MisreadModel {
	m := &MisreadModel{Matrices: make([]Matrix4, readLen)}
	for i := range m.Matrices {
		for a := 0; a < 4; a++ {
			for b := 0; b < 4; b++ {
				if a == b {
					m.Matrices[i][a][b] = 1 - pe
				} else {
					m.Matrices[i][a][b] = pe / 3
				}
			}
		}
	}
	return m
}

// PlatformBias captures the nucleotide-specific miscall preferences of a
// sequencing run: Bias[a][b] weights how often true base a miscalls to b.
// Two distinct instances stand in for the E. coli run (tIED) and the
// A. sp. ADP1 run (wIED) of Table 3.2, whose estimated matrices differ
// notably.
type PlatformBias struct {
	Name string
	Bias Matrix4
}

// EcoliBias mirrors the shape of Table 3.2 (left): A→C dominant among A
// errors, G→T elevated.
var EcoliBias = PlatformBias{
	Name: "ecoli-run",
	Bias: Matrix4{
		{0, 0.60, 0.18, 0.22},
		{0.37, 0, 0.25, 0.38},
		{0.07, 0.23, 0, 0.70},
		{0.12, 0.45, 0.43, 0},
	},
}

// AspBias mirrors Table 3.2 (right): much stronger A→C and G→T preference —
// "the wrong Illumina error distribution" when applied to the other run.
var AspBias = PlatformBias{
	Name: "asp-run",
	Bias: Matrix4{
		{0, 0.66, 0.05, 0.29},
		{0.29, 0, 0.12, 0.59},
		{0.05, 0.13, 0, 0.82},
		{0.22, 0.45, 0.33, 0},
	},
}

// IlluminaModel builds a position-specific misread model with the two
// signature properties the dissertation relies on: errors cluster toward the
// 3' end of the read (§2.3, §3.2), and the per-base miscall preferences are
// nucleotide specific (Table 3.2). meanErr sets the read-average
// substitution rate.
func IlluminaModel(readLen int, meanErr float64, bias PlatformBias) *MisreadModel {
	m := &MisreadModel{Matrices: make([]Matrix4, readLen)}
	// Error rate ramps exponentially from ~0.3x mean at the 5' end to
	// ~3x mean near the 3' end; normalize the ramp to hit meanErr exactly.
	ramp := make([]float64, readLen)
	sum := 0.0
	for i := range ramp {
		frac := float64(i) / float64(max(readLen-1, 1))
		ramp[i] = 0.3 * math.Exp(2.3*frac) // 0.3 .. ~3.0
		sum += ramp[i]
	}
	scale := meanErr * float64(readLen) / sum
	for i := range m.Matrices {
		pe := ramp[i] * scale
		if pe > 0.5 {
			pe = 0.5
		}
		for a := 0; a < 4; a++ {
			m.Matrices[i][a][a] = 1 - pe
			rowBias := bias.Bias[a]
			biasSum := rowBias[0] + rowBias[1] + rowBias[2] + rowBias[3]
			for b := 0; b < 4; b++ {
				if a == b {
					continue
				}
				m.Matrices[i][a][b] = pe * rowBias[b] / biasSum
			}
		}
	}
	return m
}

// KmerErrorModel is the kmer-position error model q_i(alpha, beta) of §3.2:
// Q[i][a][b] is the probability that base a at kmer position i is read as b.
type KmerErrorModel struct {
	K int
	Q []Matrix4
}

// NewUniformKmerModel builds the tUED/wUED kmer model with constant error
// probability pe (Eq. 3.1).
func NewUniformKmerModel(k int, pe float64) *KmerErrorModel {
	u := UniformModel(k, pe)
	return &KmerErrorModel{K: k, Q: u.Matrices}
}

// KmerModelFromReadModel derives q_i by averaging the read-position matrices
// over all kmer placements, the same marginalization the paper performs when
// estimating q_i from mapped reads (each read contributes its L-k+1 kmer
// decompositions; read position i+j feeds kmer position j).
func KmerModelFromReadModel(rm *MisreadModel, k int) (*KmerErrorModel, error) {
	L := rm.Len()
	if k > L {
		return nil, fmt.Errorf("simulate: k=%d exceeds read length %d", k, L)
	}
	out := &KmerErrorModel{K: k, Q: make([]Matrix4, k)}
	for j := 0; j < k; j++ {
		var acc Matrix4
		n := 0
		for start := 0; start+k <= L; start++ {
			mat := rm.Matrices[start+j]
			for a := 0; a < 4; a++ {
				for b := 0; b < 4; b++ {
					acc[a][b] += mat[a][b]
				}
			}
			n++
		}
		for a := 0; a < 4; a++ {
			for b := 0; b < 4; b++ {
				acc[a][b] /= float64(n)
			}
		}
		out.Q[j] = acc
	}
	return out, nil
}

// MisreadProb returns p_e(xm, xl): the probability that kmer xm is read as
// kmer xl under the position-specific model (§3.2).
func (km *KmerErrorModel) MisreadProb(xm, xl seq.Kmer) float64 {
	p := 1.0
	for i := 0; i < km.K; i++ {
		a := xm.At(i, km.K)
		b := xl.At(i, km.K)
		p *= km.Q[i][a][b]
		if p == 0 {
			return 0
		}
	}
	return p
}

// drawCall samples the called base for true base a at read position i.
func (m *MisreadModel) drawCall(i int, a seq.Base, rng *rand.Rand) seq.Base {
	row := m.Matrices[i][a]
	u := rng.Float64()
	acc := 0.0
	for b := 0; b < 3; b++ {
		acc += row[b]
		if u < acc {
			return seq.Base(b)
		}
	}
	return 3
}
