// Package align implements pairwise sequence alignment, the "user defined
// similarity function" slot of CLOSET's edge validation (§4.3.1 names
// pairwise sequence alignment as the canonical choice). The aligner is a
// semi-global (free end-gap) dynamic program, optionally banded: reads
// sampled from different offsets of the same 16S molecule align with
// overhangs, which end-gap-free scoring does not penalize.
package align

import "fmt"

// Scoring holds the alignment score parameters.
type Scoring struct {
	Match    int
	Mismatch int // typically negative
	Gap      int // typically negative
}

// DefaultScoring is +1/-1/-2, a standard DNA overlap scoring.
var DefaultScoring = Scoring{Match: 1, Mismatch: -1, Gap: -2}

// Result summarizes one alignment.
type Result struct {
	Score int
	// Matches and Length describe the aligned region (excluding free end
	// gaps); Identity = Matches / Length.
	Matches int
	Length  int
}

// Identity is the fraction of matching columns in the aligned region.
func (r Result) Identity() float64 {
	if r.Length == 0 {
		return 0
	}
	return float64(r.Matches) / float64(r.Length)
}

// SemiGlobal aligns a against b with free end gaps on both sequences, so
// the best-scoring overlap (including containment) is found. band limits
// the explored diagonal width around the best diagonal; band <= 0 runs the
// full O(len(a)*len(b)) DP.
func SemiGlobal(a, b []byte, sc Scoring, band int) (Result, error) {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return Result{}, fmt.Errorf("align: empty sequence")
	}
	if band > 0 {
		return bandedSemiGlobal(a, b, sc, band)
	}
	// score[i][j]: best score of alignment ending at a[:i], b[:j].
	// Free leading gaps: first row and column are zero.
	// Two rolling rows of scores plus traceback-free match/length tracking.
	type cell struct {
		score   int
		matches int
		length  int
	}
	prev := make([]cell, m+1)
	cur := make([]cell, m+1)
	best := cell{score: -1 << 30}
	for i := 1; i <= n; i++ {
		cur[0] = cell{}
		for j := 1; j <= m; j++ {
			diag := prev[j-1]
			s := sc.Mismatch
			match := 0
			if a[i-1] == b[j-1] {
				s = sc.Match
				match = 1
			}
			bestCell := cell{score: diag.score + s, matches: diag.matches + match, length: diag.length + 1}
			if up := prev[j]; up.score+sc.Gap > bestCell.score {
				bestCell = cell{score: up.score + sc.Gap, matches: up.matches, length: up.length + 1}
			}
			if left := cur[j-1]; left.score+sc.Gap > bestCell.score {
				bestCell = cell{score: left.score + sc.Gap, matches: left.matches, length: left.length + 1}
			}
			cur[j] = bestCell
			// Free trailing gaps: maximize over the last row and column.
			if (i == n || j == m) && bestCell.score > best.score {
				best = bestCell
			}
		}
		prev, cur = cur, prev
	}
	return Result{Score: best.score, Matches: best.matches, Length: best.length}, nil
}

// bandedSemiGlobal restricts the DP to diagonals within band of the main
// diagonal family, seeded on the length difference. It is exact whenever
// the optimal alignment stays inside the band.
func bandedSemiGlobal(a, b []byte, sc Scoring, band int) (Result, error) {
	n, m := len(a), len(b)
	type cell struct {
		score   int
		matches int
		length  int
	}
	const minScore = -1 << 30
	// Rows indexed by i; columns j restricted to [i-band, i+band] around
	// every anchor diagonal. To keep semi-global semantics with offsets, we
	// widen the band by the length difference.
	width := band + abs(n-m)
	prev := make([]cell, m+1)
	cur := make([]cell, m+1)
	inBandPrev := func(j int) bool { return j >= 0 && j <= m }
	_ = inBandPrev
	for j := range prev {
		prev[j] = cell{}
	}
	best := cell{score: minScore}
	for i := 1; i <= n; i++ {
		lo := max(1, i-width)
		hi := min(m, i+width)
		for j := range cur {
			cur[j] = cell{score: minScore}
		}
		cur[lo-1] = cell{score: minScore}
		if lo == 1 {
			cur[0] = cell{}
		}
		for j := lo; j <= hi; j++ {
			diag := prev[j-1]
			s := sc.Mismatch
			match := 0
			if a[i-1] == b[j-1] {
				s = sc.Match
				match = 1
			}
			bestCell := cell{score: minScore}
			if diag.score > minScore/2 {
				bestCell = cell{score: diag.score + s, matches: diag.matches + match, length: diag.length + 1}
			}
			if up := prev[j]; up.score > minScore/2 && up.score+sc.Gap > bestCell.score {
				bestCell = cell{score: up.score + sc.Gap, matches: up.matches, length: up.length + 1}
			}
			if left := cur[j-1]; left.score > minScore/2 && left.score+sc.Gap > bestCell.score {
				bestCell = cell{score: left.score + sc.Gap, matches: left.matches, length: left.length + 1}
			}
			cur[j] = bestCell
			if (i == n || j == m) && bestCell.score > best.score {
				best = bestCell
			}
		}
		prev, cur = cur, prev
	}
	if best.score == minScore {
		return Result{}, fmt.Errorf("align: band %d too narrow for lengths %d/%d", band, n, m)
	}
	return Result{Score: best.score, Matches: best.matches, Length: best.length}, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// OverlapIdentity is the CLOSET-compatible similarity function: the
// identity of the best semi-global alignment, normalized so that a read
// contained in another with no differences scores 1. It uses a band scaled
// to 10% of the shorter read.
func OverlapIdentity(a, b []byte) float64 {
	band := min(len(a), len(b)) / 10
	if band < 8 {
		band = 8
	}
	res, err := SemiGlobal(a, b, DefaultScoring, band)
	if err != nil {
		return 0
	}
	// Require the aligned region to cover most of the shorter read so
	// spurious short overlaps do not score highly.
	minLen := min(len(a), len(b))
	coverage := float64(res.Length) / float64(minLen)
	if coverage > 1 {
		coverage = 1
	}
	return res.Identity() * coverage
}
