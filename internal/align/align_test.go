package align

import (
	"math/rand"
	"testing"

	"repro/internal/simulate"
)

func TestSemiGlobalIdentical(t *testing.T) {
	a := []byte("ACGTACGTAC")
	res, err := SemiGlobal(a, a, DefaultScoring, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != len(a) || res.Matches != len(a) || res.Identity() != 1 {
		t.Errorf("self alignment = %+v", res)
	}
}

func TestSemiGlobalEmptyInput(t *testing.T) {
	if _, err := SemiGlobal(nil, []byte("A"), DefaultScoring, 0); err == nil {
		t.Error("expected error for empty sequence")
	}
}

func TestSemiGlobalSubstitution(t *testing.T) {
	a := []byte("ACGTACGTAC")
	b := []byte("ACGTTCGTAC")
	res, err := SemiGlobal(a, b, DefaultScoring, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 9 || res.Length != 10 {
		t.Errorf("substitution alignment = %+v", res)
	}
	if res.Identity() != 0.9 {
		t.Errorf("identity = %v", res.Identity())
	}
}

func TestSemiGlobalOverhangsFree(t *testing.T) {
	// b is a shifted window of the same sequence: overlap aligns with no
	// penalty for the overhangs.
	full := []byte("AAAACCCCGGGGTTTTACGTACGT")
	a := full[:16]
	b := full[8:]
	res, err := SemiGlobal(a, b, DefaultScoring, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 8 || res.Identity() != 1 {
		t.Errorf("overlap alignment = %+v", res)
	}
}

func TestSemiGlobalContainment(t *testing.T) {
	outer := []byte("TTTTTACGTACGTACGTTTTTT")
	inner := []byte("ACGTACGTACGT")
	res, err := SemiGlobal(inner, outer, DefaultScoring, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != len(inner) || res.Identity() != 1 {
		t.Errorf("containment alignment = %+v", res)
	}
}

func TestSemiGlobalIndel(t *testing.T) {
	a := []byte("ACGTACGTACGT")
	b := []byte("ACGTAGTACGT") // one deletion
	res, err := SemiGlobal(a, b, DefaultScoring, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 11 {
		t.Errorf("indel alignment matches = %d want 11 (%+v)", res.Matches, res)
	}
}

func TestBandedMatchesFullWhenInBand(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base, _ := simulate.RandomGenome(300, simulate.UniformProfile, rng)
	for trial := 0; trial < 20; trial++ {
		a := append([]byte(nil), base[rng.Intn(50):250]...)
		b := append([]byte(nil), base[rng.Intn(50):260]...)
		// A few substitutions.
		for i := 0; i < 5; i++ {
			p := rng.Intn(len(b))
			b[p] = "ACGT"[rng.Intn(4)]
		}
		full, err := SemiGlobal(a, b, DefaultScoring, 0)
		if err != nil {
			t.Fatal(err)
		}
		banded, err := SemiGlobal(a, b, DefaultScoring, 16)
		if err != nil {
			t.Fatal(err)
		}
		if full.Score != banded.Score {
			t.Fatalf("trial %d: banded score %d != full %d", trial, banded.Score, full.Score)
		}
	}
}

func TestOverlapIdentityOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	marker, _ := simulate.RandomGenome(600, simulate.UniformProfile, rng)
	same := append([]byte(nil), marker[100:500]...)
	mutated := append([]byte(nil), same...)
	for i := 0; i < 8; i++ { // 2% divergence
		p := rng.Intn(len(mutated))
		mutated[p] = "ACGT"[rng.Intn(4)]
	}
	unrelated, _ := simulate.RandomGenome(400, simulate.UniformProfile, rng)
	simSame := OverlapIdentity(same, mutated)
	simOther := OverlapIdentity(same, unrelated)
	if simSame < 0.95 {
		t.Errorf("2%%-diverged identity = %v, too low", simSame)
	}
	if simOther > 0.7 {
		t.Errorf("unrelated identity = %v, too high", simOther)
	}
	if simSame <= simOther {
		t.Error("identity does not order by relatedness")
	}
}

func TestOverlapIdentitySymmetryish(t *testing.T) {
	a := []byte("ACGTACGTACGTACGTACGTACGTACGTACGT")
	b := []byte("ACGTACGAACGTACGTACGTACGAACGTACGT")
	ab := OverlapIdentity(a, b)
	ba := OverlapIdentity(b, a)
	if ab != ba {
		t.Errorf("asymmetric identity: %v vs %v", ab, ba)
	}
}

func BenchmarkSemiGlobalFull(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x, _ := simulate.RandomGenome(400, simulate.UniformProfile, rng)
	y, _ := simulate.RandomGenome(400, simulate.UniformProfile, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SemiGlobal(x, y, DefaultScoring, 0)
	}
}

func BenchmarkSemiGlobalBanded(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	x, _ := simulate.RandomGenome(400, simulate.UniformProfile, rng)
	y := append([]byte(nil), x...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SemiGlobal(x, y, DefaultScoring, 16)
	}
}
