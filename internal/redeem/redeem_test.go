package redeem

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/eval"
	"repro/internal/seq"
	"repro/internal/simulate"
)

// repeatData builds a repeat-rich dataset plus the kmer error model matched
// to the simulation (the tIED situation).
func repeatData(t *testing.T, genomeLen int, repeatFrac float64, nReads int, errRate float64, seed int64) (*simulate.RepeatGenome, []simulate.SimRead, *simulate.KmerErrorModel, int) {
	t.Helper()
	const k = 11
	rng := rand.New(rand.NewSource(seed))
	var genome *simulate.RepeatGenome
	var err error
	if repeatFrac > 0 {
		genome, err = simulate.GenomeWithRepeats(genomeLen, simulate.RepeatLadder(genomeLen, repeatFrac), simulate.MaizeProfile, rng)
	} else {
		var g []byte
		g, err = simulate.RandomGenome(genomeLen, simulate.MaizeProfile, rng)
		genome = &simulate.RepeatGenome{Seq: g}
	}
	if err != nil {
		t.Fatal(err)
	}
	model := simulate.IlluminaModel(36, errRate, simulate.EcoliBias)
	sim, err := simulate.SimulateReads(genome.Seq, simulate.ReadSimConfig{
		N: nReads, Model: model, BothStrands: true, QualityNoise: 2,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	km, err := simulate.KmerModelFromReadModel(model, k)
	if err != nil {
		t.Fatal(err)
	}
	return genome, sim, km, k
}

func TestConfigValidation(t *testing.T) {
	km := simulate.NewUniformKmerModel(11, 0.01)
	bad := []Config{
		{K: 0, Dmax: 1, C: 3, MaxIter: 5},
		{K: 11, Dmax: 0, C: 3, MaxIter: 5},
		{K: 11, Dmax: 3, C: 3, MaxIter: 5},
		{K: 11, Dmax: 1, C: 3, MaxIter: 0},
	}
	for i, cfg := range bad {
		if _, err := New([]seq.Read{{Seq: []byte("ACGTACGTACGTACG")}}, km, cfg); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if _, err := New(nil, km, DefaultConfig(11)); err == nil {
		t.Error("expected error for empty spectrum")
	}
	if _, err := New([]seq.Read{{Seq: []byte("ACGTACGTACGTACG")}}, simulate.NewUniformKmerModel(9, 0.01), DefaultConfig(11)); err == nil {
		t.Error("expected error for k mismatch")
	}
}

func TestEMIncreasesLikelihoodAndConserves(t *testing.T) {
	_, sim, km, _ := repeatData(t, 20000, 0, 20000, 0.01, 1)
	m, err := New(simulate.Reads(sim), km, DefaultConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	totalY := 0.0
	for _, y := range m.Y {
		totalY += y
	}
	iters := m.Run()
	if iters < 2 {
		t.Fatalf("EM stopped after %d iterations", iters)
	}
	for i := 1; i < len(m.LogLik); i++ {
		if m.LogLik[i] < m.LogLik[i-1]-1e-6*math.Abs(m.LogLik[i-1]) {
			t.Errorf("log likelihood decreased at iter %d: %v -> %v", i, m.LogLik[i-1], m.LogLik[i])
		}
	}
	// The M step redistributes counts: total T mass equals total Y mass.
	totalT := 0.0
	for _, v := range m.T {
		totalT += v
	}
	if math.Abs(totalT-totalY) > 1e-6*totalY {
		t.Errorf("mass not conserved: T=%v Y=%v", totalT, totalY)
	}
}

func TestTSeparatesErrorsBetterThanY(t *testing.T) {
	genome, sim, km, k := repeatData(t, 30000, 0.5, 60000, 0.01, 2)
	m, err := New(simulate.Reads(sim), km, DefaultConfig(k))
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	genomeSet := eval.GenomeKmerSet(genome.Seq, k)
	bestY, bestT := 1<<30, 1<<30
	for thr := 1.0; thr <= 40; thr++ {
		fy := m.DetectByY(thr)
		ft := m.DetectByT(thr)
		dy := eval.EvaluateDetection(m.Spec.Kmers, func(i int) bool { return fy[i] }, genomeSet)
		dt := eval.EvaluateDetection(m.Spec.Kmers, func(i int) bool { return ft[i] }, genomeSet)
		bestY = min(bestY, dy.Wrong())
		bestT = min(bestT, dt.Wrong())
	}
	t.Logf("repeat-rich minimum FP+FN: Y=%d T=%d", bestY, bestT)
	// Table 3.3's headline: thresholding T beats thresholding Y on
	// repetitious genomes.
	if bestT >= bestY {
		t.Errorf("T-threshold (%d) not better than Y-threshold (%d)", bestT, bestY)
	}
}

func TestTHistogramHasCoveragePeak(t *testing.T) {
	_, sim, km, k := repeatData(t, 20000, 0, 30000, 0.006, 3)
	m, err := New(simulate.Reads(sim), km, DefaultConfig(k))
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	// Coverage constant: both strands of every read contribute, and loci
	// are strand-specific, so a genome kmer collects 2n(L-k+1)/(2|G|)
	// = n(L-k+1)/|G| instances.
	cov := float64(30000*(36-k+1)) / float64(20000)
	h := m.THistogram(1, 3*cov)
	// Expect substantial mass near the coverage constant (Fig 3.3).
	peakMass := 0
	for b := int(cov * 0.6); b < int(cov*1.4) && b < len(h); b++ {
		peakMass += h[b]
	}
	if peakMass < m.Spec.Size()/10 {
		t.Errorf("no coverage peak near %f: mass %d of %d", cov, peakMass, m.Spec.Size())
	}
}

func TestInferThreshold(t *testing.T) {
	_, sim, km, k := repeatData(t, 20000, 0, 30000, 0.006, 4)
	m, err := New(simulate.Reads(sim), km, DefaultConfig(k))
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	thr, mix, err := m.InferThreshold(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	cov := float64(30000*(36-k+1)) / float64(20000)
	if thr <= 0 || thr >= cov {
		t.Errorf("inferred threshold %v outside (0, %v)", thr, cov)
	}
	if mix.Theta < cov*0.5 || mix.Theta > cov*1.5 {
		t.Errorf("mixture theta %v want ~%v", mix.Theta, cov)
	}
}

func TestCorrectReadsOnRepeats(t *testing.T) {
	_, sim, km, k := repeatData(t, 20000, 0.8, 40000, 0.01, 5)
	reads := simulate.Reads(sim)
	m, err := New(reads, km, DefaultConfig(k))
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	thr, _, err := m.InferThreshold(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	corrected := m.CorrectReads(reads, thr, 1)
	cs, err := eval.EvaluateCorrection(sim, corrected)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("redeem on 80%% repeats: %v", cs)
	if cs.Gain() < 0.3 {
		t.Errorf("Gain = %.3f want > 0.3 on repeat-rich genome", cs.Gain())
	}
}

func TestCorrectReadsParallelMatchesSerial(t *testing.T) {
	_, sim, km, k := repeatData(t, 8000, 0, 8000, 0.01, 6)
	reads := simulate.Reads(sim)
	m, err := New(reads, km, DefaultConfig(k))
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	a := m.CorrectReads(reads, 5, 1)
	b := m.CorrectReads(reads, 5, 4)
	for i := range a {
		if string(a[i].Seq) != string(b[i].Seq) {
			t.Fatalf("parallel correction differs at read %d", i)
		}
	}
	// Input untouched.
	if string(reads[0].Seq) != string(sim[0].Read.Seq) {
		t.Error("input mutated")
	}
}

func TestCorrectReadShorterThanK(t *testing.T) {
	_, sim, km, k := repeatData(t, 8000, 0, 4000, 0.01, 7)
	m, err := New(simulate.Reads(sim), km, DefaultConfig(k))
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	short := seq.Read{ID: "s", Seq: []byte("ACGT")}
	out := m.CorrectReads([]seq.Read{short}, 5, 1)
	if string(out[0].Seq) != "ACGT" {
		t.Errorf("short read changed: %s", out[0].Seq)
	}
}
