package redeem

import (
	"context"
	"fmt"

	"repro/internal/kspectrum"
	"repro/internal/seq"
	"repro/internal/simulate"
)

// ChunkSource is the chunked read source of the streaming pipeline; see
// seq.ChunkSource.
type ChunkSource = seq.ChunkSource

// CorrectStream is the out-of-core REDEEM pipeline: a first pass streams
// every chunk from open() into the spectrum (with Config.MemoryBudget
// bounding the accumulator's resident size), then EM runs, the §3.7 mixture
// infers the classification threshold (component sweep bounded by
// Config.MixtureMaxG), and a second pass re-opens the source, corrects each
// chunk with `workers` goroutines, and hands (original, corrected) chunk
// pairs to emit. It returns the fitted model and the inferred threshold.
func CorrectStream(open func() (ChunkSource, error), emit func(orig, corrected []seq.Read) error, errModel *simulate.KmerErrorModel, cfg Config, workers int) (*Model, float64, error) {
	return correctStreamCtx(context.Background(), open, emit, errModel, cfg, workers)
}

// correctStreamCtx is the context-aware pipeline every front end (the
// legacy CorrectStream, the engine adapter) shares: cancellation is
// polled at every chunk boundary, inside the correction worker pool, and
// in the out-of-core spill/merge loops, so a cancelled ctx aborts the run
// promptly with ctx.Err() and leaks no goroutines or spill files.
func correctStreamCtx(ctx context.Context, open seq.SourceOpener, emit func(orig, corrected []seq.Read) error, errModel *simulate.KmerErrorModel, cfg Config, workers int) (*Model, float64, error) {
	if err := cfg.validate(); err != nil {
		return nil, 0, err
	}
	if errModel == nil || errModel.K != cfg.K {
		return nil, 0, fmt.Errorf("redeem: error model k mismatch")
	}
	spec := cfg.Spectrum
	if spec == nil {
		// No preloaded spectrum: the first pass streams every chunk
		// through the (possibly spilling) accumulator.
		st, err := kspectrum.NewStreamBuilder(cfg.K, true, kspectrum.StreamOptions{
			Build: cfg.Build, MemoryBudget: cfg.MemoryBudget, TempDir: cfg.TempDir,
			CheckpointDir: cfg.CheckpointDir, Resume: cfg.Resume,
			CheckpointEvery: cfg.CheckpointEvery, Context: ctx,
		})
		if err != nil {
			return nil, 0, err
		}
		defer st.Close() // reclaim spill files if any stage aborts
		if err := seq.StreamChunksCtx(ctx, open, func(chunk []seq.Read) error {
			st.Add(chunk)
			return nil
		}); err != nil {
			return nil, 0, fmt.Errorf("redeem: build pass: %w", err)
		}
		if spec, err = st.Build(); err != nil {
			return nil, 0, err
		}
	}
	m, err := NewFromSpectrum(spec, errModel, cfg)
	if err != nil {
		return nil, 0, err
	}
	m.Run()
	maxG := cfg.MixtureMaxG
	if maxG <= 0 {
		maxG = 3
	}
	thr, _, err := m.InferThreshold(1, maxG)
	if err != nil {
		return nil, 0, err
	}
	if err := seq.StreamChunksCtx(ctx, open, func(chunk []seq.Read) error {
		corrected, err := m.CorrectReadsCtx(ctx, chunk, thr, workers)
		if err != nil {
			return err
		}
		return emit(chunk, corrected)
	}); err != nil {
		return nil, 0, fmt.Errorf("redeem: correct pass: %w", err)
	}
	return m, thr, nil
}
