package redeem

import (
	"context"
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/kspectrum"
	"repro/internal/seq"
	"repro/internal/simulate"
)

// EngineName is REDEEM's registry key.
const EngineName = "redeem"

func init() { engine.Register(redeemEngine{}) }

// extConfig is the engine-specific payload redeem's functional options
// tuck into an engine.Run.
type extConfig struct {
	model       *simulate.KmerErrorModel
	errorRate   float64
	mixtureMaxG int
}

func extOf(r *engine.Run) *extConfig {
	if v, ok := r.Ext(EngineName); ok {
		return v.(*extConfig)
	}
	c := &extConfig{}
	r.SetExt(EngineName, c)
	return c
}

// WithModel supplies the kmer error model; nil falls back to a uniform
// model at the WithErrorRate rate.
func WithModel(m *simulate.KmerErrorModel) engine.Option {
	return func(r *engine.Run) { extOf(r).model = m }
}

// WithErrorRate parameterizes the fallback uniform error model (0 selects
// the default 0.01).
func WithErrorRate(rate float64) engine.Option {
	return func(r *engine.Run) { extOf(r).errorRate = rate }
}

// WithMixtureMaxG bounds the component count of the §3.7 threshold
// mixture sweep (<= 0 selects 3, the historical facade default; the CLI
// passes 4).
func WithMixtureMaxG(g int) engine.Option {
	return func(r *engine.Run) { extOf(r).mixtureMaxG = g }
}

// redeemEngine adapts REDEEM to the pluggable engine contract.
type redeemEngine struct{}

func (redeemEngine) Name() string { return EngineName }

func (redeemEngine) Capabilities() engine.Capabilities {
	return engine.Capabilities{
		Streaming:     true,
		SpectrumReuse: true,
		MaxSpectrumK:  seq.MaxK,
		// The EM fit and the sparse Pe graph walk every spectrum column,
		// so REDEEM must be colocated with its spectrum: no remote
		// backend. The coordinator refuses to route redeem requests to a
		// sharded spectrum on this declaration.
		RemoteSpectrum: false,
	}
}

// resolveConfig finalizes the configuration and error model from the run
// and the (possibly preloaded) spectrum. A preloaded spectrum's k wins
// over the package default when the run's K is unset; an explicit
// disagreeing K is reported by the k-authority rule or config validation.
func resolveConfig(run *engine.Run, spec *kspectrum.Spectrum) (Config, *simulate.KmerErrorModel) {
	e := extOf(run)
	k := run.K
	if k == 0 {
		if spec != nil {
			k = spec.K
		} else {
			k = 11
		}
	}
	model := e.model
	if model == nil {
		rate := e.errorRate
		if rate == 0 {
			rate = 0.01
		}
		model = simulate.NewUniformKmerModel(k, rate)
	}
	cfg := DefaultConfig(k)
	cfg.Spectrum = spec
	cfg.Build = kspectrum.BuildOptions{Workers: run.Workers, Shards: run.Shards}
	cfg.MemoryBudget = run.MemoryBudget
	cfg.TempDir = run.TempDir
	cfg.CheckpointDir = run.CheckpointDir
	cfg.Resume = run.Resume
	cfg.CheckpointEvery = run.CheckpointEvery
	cfg.MixtureMaxG = e.mixtureMaxG
	return cfg, model
}

func (redeemEngine) Correct(ctx context.Context, reads []seq.Read, run *engine.Run) ([]seq.Read, *engine.Result, error) {
	start := time.Now()
	spec, err := run.ResolveSpectrum(run.K)
	if err != nil {
		return nil, nil, err
	}
	cfg, model := resolveConfig(run, spec)
	m, err := New(reads, model, cfg)
	if err != nil {
		return nil, nil, err
	}
	m.Run()
	maxG := cfg.MixtureMaxG
	if maxG <= 0 {
		maxG = 3
	}
	thr, _, err := m.InferThreshold(1, maxG)
	if err != nil {
		return nil, nil, err
	}
	out, err := m.CorrectReadsCtx(ctx, reads, thr, run.Workers)
	if err != nil {
		return nil, nil, err
	}
	if err := run.SaveSpectrum(m.Spec); err != nil {
		return nil, nil, err
	}
	return out, &engine.Result{
		Engine:    EngineName,
		Duration:  time.Since(start),
		Threshold: thr,
		Spectrum:  m.Spec,
		Summary:   fmt.Sprintf("spectrum %d kmers; inferred threshold %.2f", m.Spec.Size(), thr),
	}, nil
}

func (redeemEngine) CorrectStream(ctx context.Context, open engine.SourceOpener, sink engine.Sink, run *engine.Run) (*engine.Result, error) {
	start := time.Now()
	spec, err := run.ResolveSpectrum(run.K)
	if err != nil {
		return nil, err
	}
	cfg, model := resolveConfig(run, spec)
	res := &engine.Result{Engine: EngineName}
	emit := func(orig, corrected []seq.Read) error {
		res.Reads += len(orig)
		res.Changed += engine.CountChanged(orig, corrected)
		return sink.WriteChunk(orig, corrected)
	}
	m, thr, err := correctStreamCtx(ctx, seq.SourceOpener(open), emit, model, cfg, run.Workers)
	if err != nil {
		return nil, err
	}
	if err := run.SaveSpectrum(m.Spec); err != nil {
		return nil, err
	}
	res.Duration = time.Since(start)
	res.Threshold = thr
	res.Spectrum = m.Spec
	res.Summary = fmt.Sprintf("spectrum %d kmers; inferred threshold %.2f", m.Spec.Size(), thr)
	return res, nil
}

// NewService implements engine.Servicer: the model is fitted once against
// the run's spectrum (EM plus threshold inference — the expensive part a
// daemon amortizes) and the returned corrector serves independent chunks
// concurrently.
func (redeemEngine) NewService(run *engine.Run) (engine.ChunkCorrector, error) {
	spec, err := run.ResolveSpectrum(run.K)
	if err != nil {
		return nil, err
	}
	if spec == nil {
		return nil, fmt.Errorf("redeem: service needs a spectrum")
	}
	cfg, model := resolveConfig(run, spec)
	m, err := NewFromSpectrum(spec, model, cfg)
	if err != nil {
		return nil, err
	}
	m.Run()
	maxG := cfg.MixtureMaxG
	if maxG <= 0 {
		maxG = 3
	}
	thr, _, err := m.InferThreshold(1, maxG)
	if err != nil {
		return nil, err
	}
	return &modelService{m: m, thr: thr}, nil
}

// modelService serves chunks against a fitted model: the model is
// read-only after the fit and CorrectReadsCtx touches only per-call
// state, so concurrent chunks need no synchronization.
type modelService struct {
	m   *Model
	thr float64
}

func (s *modelService) CorrectChunk(ctx context.Context, reads []seq.Read, workers int) ([]seq.Read, error) {
	return s.m.CorrectReadsCtx(ctx, reads, s.thr, workers)
}
