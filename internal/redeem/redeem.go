// Package redeem implements REDEEM (Chapter 3): repeat-aware sequencing
// error detection and correction via expectation maximization.
//
// For every kmer x_l observed Y_l times, REDEEM estimates T_l, the expected
// number of attempts to read x_l — the abundance x_l would show if no
// attempt were misread. Misreads mix neighboring kmers' abundances through
// the position-specific substitution model p_e(x_m, x_l) = Π q_i(m_i, l_i),
// restricted to the observed d_max-neighborhood (§3.2). Thresholding on T
// instead of the raw counts Y separates erroneous kmers from genuine
// low-copy repeats (Table 3.3); per-base posterior voting over all covering
// kmers corrects reads (§3.3); and the §3.7 mixture model infers the
// threshold automatically.
package redeem

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/kspectrum"
	"repro/internal/seq"
	"repro/internal/simulate"
	"repro/internal/stats"
)

// Config controls model construction.
type Config struct {
	K    int // kmer length (§3.5: average non-repetitive kmer ~1 genome hit)
	Dmax int // neighborhood radius (1 by default; 2 changed little, §3.5)
	C    int // chunk count for the neighborhood index
	// MaxIter bounds EM iterations; convergence usually arrives earlier.
	MaxIter int
	// Tol is the relative log-likelihood improvement at which EM stops.
	Tol float64
	// Spectrum, when non-nil, is a preloaded k-spectrum (typically from
	// kspectrum.ReadSpectrumFile): New and CorrectStream skip the
	// counting pass and model the preloaded counts directly. It must
	// match K and have been built from both strands.
	Spectrum *kspectrum.Spectrum
	// Build configures the sharded parallel spectrum engine; the zero
	// value selects full parallelism (see kspectrum.BuildOptions).
	Build kspectrum.BuildOptions
	// MemoryBudget, when positive, routes spectrum construction through
	// the out-of-core engine (kspectrum.StreamBuilder); see
	// reptile.Params.MemoryBudget for the semantics. The EM state itself
	// (Y, T, the sparse misread graph) scales with the distinct-kmer
	// count, not the read count, and stays in memory.
	MemoryBudget int64
	// TempDir hosts the spill files ("" = os.TempDir()).
	TempDir string
	// CheckpointDir, Resume and CheckpointEvery make the spectrum build
	// crash-safe exactly as in reptile.Params: runs and a read-cursor
	// manifest persist in CheckpointDir, and Resume continues a killed
	// build. EM state is recomputed from the finished spectrum and needs
	// no checkpointing of its own.
	CheckpointDir   string
	Resume          bool
	CheckpointEvery int64
	// MixtureMaxG bounds the component count of the §3.7 mixture when
	// CorrectStream infers the classification threshold (<= 0 selects 3,
	// the facade default). Callers wanting a different sweep — e.g. the
	// CLI's historical maxG=4 — set it here so detection and correction
	// stay consistent.
	MixtureMaxG int
}

// DefaultConfig mirrors the dissertation's settings.
func DefaultConfig(k int) Config {
	return Config{K: k, Dmax: 1, C: min(k, 5), MaxIter: 50, Tol: 1e-6}
}

func (c Config) validate() error {
	if c.K <= 1 || c.K > seq.MaxK {
		return fmt.Errorf("redeem: invalid k=%d", c.K)
	}
	if c.Dmax < 1 || c.Dmax >= c.K {
		return fmt.Errorf("redeem: invalid dmax=%d", c.Dmax)
	}
	if c.C <= c.Dmax || c.C > c.K {
		return fmt.Errorf("redeem: need dmax < c <= k, got c=%d", c.C)
	}
	if c.MaxIter < 1 {
		return fmt.Errorf("redeem: need at least one EM iteration")
	}
	if c.Spectrum != nil {
		if c.Spectrum.K != c.K {
			return fmt.Errorf("redeem: preloaded spectrum has k=%d but config wants k=%d", c.Spectrum.K, c.K)
		}
		if !c.Spectrum.BothStrands {
			return fmt.Errorf("redeem: preloaded spectrum was not built from both strands")
		}
	}
	return nil
}

// edge is one misread channel into a kmer: source spectrum index and the
// row-normalized misread probability pe(source -> target).
type edge struct {
	src int32
	pe  float64
}

// Model carries the fitted REDEEM state.
type Model struct {
	Cfg  Config
	Err  *simulate.KmerErrorModel
	Spec *kspectrum.Spectrum

	// backend is the spectrum query seam the correction loop's membership
	// screen goes through. REDEEM stays colocated with its spectrum — the
	// EM fit walks every column (engine.Capabilities.RemoteSpectrum is
	// false) — so this is always the local adapter, but routing the
	// queries through it keeps the per-read hot path on the same
	// interface every other consumer uses.
	backend kspectrum.SpectrumBackend

	// Y[l] is the observed occurrence count of spectrum kmer l; T[l] the
	// EM-estimated expected number of read attempts.
	Y []float64
	T []float64

	// incoming[m] lists the neighborhood edges l -> m (including l == m).
	incoming [][]edge
	// LogLik traces the EM objective per iteration.
	LogLik []float64
}

// New builds the spectrum, the sparse misread graph, and initializes T = Y.
// A positive Config.MemoryBudget bounds the spectrum accumulator's resident
// size through the out-of-core engine.
func New(reads []seq.Read, errModel *simulate.KmerErrorModel, cfg Config) (*Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// Reject a bad model before the (possibly spilling) spectrum build.
	if errModel == nil || errModel.K != cfg.K {
		return nil, fmt.Errorf("redeem: error model k mismatch")
	}
	var spec *kspectrum.Spectrum
	var err error
	switch {
	case cfg.Spectrum != nil:
		spec = cfg.Spectrum
	case cfg.MemoryBudget > 0 || cfg.CheckpointDir != "":
		spec, _, err = kspectrum.BuildOutOfCore(reads, cfg.K, true, kspectrum.StreamOptions{
			Build: cfg.Build, MemoryBudget: cfg.MemoryBudget, TempDir: cfg.TempDir,
			CheckpointDir: cfg.CheckpointDir, Resume: cfg.Resume, CheckpointEvery: cfg.CheckpointEvery,
		})
	default:
		spec, err = kspectrum.BuildParallel(reads, cfg.K, true, cfg.Build)
	}
	if err != nil {
		return nil, err
	}
	return NewFromSpectrum(spec, errModel, cfg)
}

// NewFromSpectrum builds the model over an already-constructed spectrum —
// the entry point for streaming construction, where the spectrum arrives
// from a StreamBuilder rather than an in-memory read set.
func NewFromSpectrum(spec *kspectrum.Spectrum, errModel *simulate.KmerErrorModel, cfg Config) (*Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if errModel == nil || errModel.K != cfg.K {
		return nil, fmt.Errorf("redeem: error model k mismatch")
	}
	if spec == nil || spec.K != cfg.K {
		return nil, fmt.Errorf("redeem: spectrum k mismatch")
	}
	if spec.Size() == 0 {
		return nil, fmt.Errorf("redeem: empty spectrum")
	}
	ni, err := kspectrum.NewNeighborIndex(spec, cfg.Dmax, cfg.C)
	if err != nil {
		return nil, err
	}
	m := &Model{Cfg: cfg, Err: errModel, Spec: spec, backend: kspectrum.Local(spec)}
	m.Y = make([]float64, spec.Size())
	m.T = make([]float64, spec.Size())
	for i, c := range spec.Counts {
		m.Y[i] = float64(c)
		m.T[i] = float64(c)
	}
	// Build the sparse Pe restricted to observed neighborhoods, row
	// normalized (§3.2). Row l spans the same index set as column l
	// because Hamming adjacency is symmetric.
	neighbors := make([][]int32, spec.Size())
	var buf []int32
	for l := 0; l < spec.Size(); l++ {
		buf = ni.Neighbors(spec.Kmers[l], buf[:0])
		neighbors[l] = append([]int32(nil), buf...)
	}
	m.incoming = make([][]edge, spec.Size())
	rowSums := make([]float64, spec.Size())
	type rawEdge struct {
		src, dst int32
		pe       float64
	}
	var raw []rawEdge
	for l := 0; l < spec.Size(); l++ {
		for _, dst := range neighbors[l] {
			pe := errModel.MisreadProb(spec.Kmers[l], spec.Kmers[dst])
			if pe <= 0 {
				continue
			}
			raw = append(raw, rawEdge{src: int32(l), dst: dst, pe: pe})
			rowSums[l] += pe
		}
	}
	for _, e := range raw {
		if rowSums[e.src] <= 0 {
			continue
		}
		m.incoming[e.dst] = append(m.incoming[e.dst], edge{src: e.src, pe: e.pe / rowSums[e.src]})
	}
	return m, nil
}

// Run executes the EM iterations of §3.2, updating T in place and returning
// the number of iterations performed.
func (m *Model) Run() int {
	n := m.Spec.Size()
	next := make([]float64, n)
	denom := make([]float64, n)
	prevLL := math.Inf(-1)
	iters := 0
	for iter := 0; iter < m.Cfg.MaxIter; iter++ {
		iters++
		// E step denominator: for each target kmer x_m, the total inflow
		// Σ_l T_l · pe(l -> m).
		ll := 0.0
		for mi := 0; mi < n; mi++ {
			d := 0.0
			for _, e := range m.incoming[mi] {
				d += m.T[e.src] * e.pe
			}
			denom[mi] = d
			if m.Y[mi] > 0 && d > 0 {
				ll += m.Y[mi] * math.Log(d)
			}
		}
		m.LogLik = append(m.LogLik, ll)
		// M step: T_l = Σ_m E[Y_lm] = Σ_m Y_m · T_l·pe(l->m) / denom_m.
		for i := range next {
			next[i] = 0
		}
		for mi := 0; mi < n; mi++ {
			if m.Y[mi] == 0 || denom[mi] <= 0 {
				continue
			}
			scale := m.Y[mi] / denom[mi]
			for _, e := range m.incoming[mi] {
				next[e.src] += m.T[e.src] * e.pe * scale
			}
		}
		copy(m.T, next)
		if iter > 0 && math.Abs(ll-prevLL) < m.Cfg.Tol*(1+math.Abs(ll)) {
			break
		}
		prevLL = ll
	}
	return iters
}

// DetectByT flags spectrum kmers with estimated attempts below the
// threshold as erroneous.
func (m *Model) DetectByT(threshold float64) []bool {
	out := make([]bool, len(m.T))
	for i, t := range m.T {
		out[i] = t < threshold
	}
	return out
}

// DetectByY is the baseline the paper compares against: thresholding the
// raw observed occurrences.
func (m *Model) DetectByY(threshold float64) []bool {
	out := make([]bool, len(m.Y))
	for i, y := range m.Y {
		out[i] = y < threshold
	}
	return out
}

// THistogram bins the estimated T values (Fig 3.3).
func (m *Model) THistogram(binWidth float64, maxT float64) []int {
	nBins := int(maxT/binWidth) + 1
	h := make([]int, nBins)
	for _, t := range m.T {
		b := int(t / binWidth)
		if b >= nBins {
			b = nBins - 1
		}
		h[b]++
	}
	return h
}

// InferThreshold fits the §3.7 mixture (Gamma + Normals + Uniform, BIC
// over G) to the estimated T and returns the classification threshold and
// the fitted model.
func (m *Model) InferThreshold(minG, maxG int) (float64, *stats.Mixture, error) {
	mix, err := stats.FitMixtureBIC(m.T, minG, maxG, 200)
	if err != nil {
		return 0, nil, err
	}
	return mix.Threshold(), mix, nil
}

// CorrectReads applies §3.3 per-base posterior correction to reads whose
// kmers include at least one flagged by the threshold. The threshold also
// enters the posterior: kmers classified non-genomic (T below it) have
// estimated genomic occurrence α̂ = 0, so they contribute no prior mass —
// their single observed instances are explained as misreads of their
// surviving neighbors. workers bounds parallelism (<=0 uses GOMAXPROCS).
func (m *Model) CorrectReads(reads []seq.Read, liberalThreshold float64, workers int) []seq.Read {
	out, _ := m.CorrectReadsCtx(context.Background(), reads, liberalThreshold, workers)
	return out
}

// cancelPollMask is the read-count stride at which correction workers
// poll the context; see reptile.CorrectAllCtx for the rationale.
const cancelPollMask = 63

// CorrectReadsCtx is CorrectReads under a context: every worker polls ctx
// every few dozen reads and the pool drains promptly once it is
// cancelled, returning (nil, ctx.Err()). All workers have exited by the
// time it returns — cancellation leaks no goroutines.
func (m *Model) CorrectReadsCtx(ctx context.Context, reads []seq.Read, liberalThreshold float64, workers int) ([]seq.Read, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	done := ctx.Done()
	out := make([]seq.Read, len(reads))
	run := func(lo, hi int) {
		// One scratch per worker: the kmer-index buffer is reused across
		// the whole read range, so per read only the output copy allocates.
		var s correctScratch
		for i := lo; i < hi; i++ {
			if (i-lo)&cancelPollMask == 0 {
				select {
				case <-done:
					return
				default:
				}
			}
			out[i] = m.correctRead(reads[i], liberalThreshold, &s)
		}
	}
	if workers == 1 || len(reads) < 2*workers {
		run(0, len(reads))
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return out, nil
	}
	var wg sync.WaitGroup
	chunk := (len(reads) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, min((w+1)*chunk, len(reads))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			run(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// correctScratch holds the per-goroutine buffers of redeem's correction
// loop — the per-position spectrum-index cache — so steady-state
// correction allocates only the returned read copy.
type correctScratch struct {
	kmerIdx []int32
}

func (m *Model) correctRead(r seq.Read, liberal float64, s *correctScratch) seq.Read {
	out := r.Clone()
	k := m.Cfg.K
	if len(out.Seq) < k {
		return out
	}
	// Screen: skip reads whose kmers all look clean (§3.3 last paragraph).
	suspicious := false
	n := len(out.Seq) - k + 1
	if cap(s.kmerIdx) < n {
		s.kmerIdx = make([]int32, n)
	}
	kmerIdx := s.kmerIdx[:n]
	for p := range kmerIdx {
		kmerIdx[p] = -1
		if km, ok := seq.Pack(out.Seq[p:], k); ok {
			// Local backends never error; the screen treats any failure
			// as "absent", which only marks the read suspicious.
			if idx, _ := m.backend.Index(km); idx >= 0 {
				kmerIdx[p] = int32(idx)
				if m.T[idx] < liberal {
					suspicious = true
				}
			} else {
				suspicious = true
			}
		} else {
			suspicious = true
		}
	}
	if !suspicious {
		return out
	}
	for i := range out.Seq {
		var vote [4]float64
		contributions := 0
		// Base i sits at kmer position t = i - p for window start p.
		for p := max(0, i-k+1); p <= min(i, len(out.Seq)-k); p++ {
			idx := kmerIdx[p]
			if idx < 0 {
				continue
			}
			t := i - p
			pi, ok := m.basePosterior(int(idx), t, liberal)
			if !ok {
				continue
			}
			for b := 0; b < 4; b++ {
				vote[b] += pi[b]
			}
			contributions++
		}
		if contributions == 0 {
			continue
		}
		bestB, bestV := 0, vote[0]
		for b := 1; b < 4; b++ {
			if vote[b] > bestV {
				bestB, bestV = b, vote[b]
			}
		}
		cur, okCur := seq.BaseFromChar(out.Seq[i])
		if !okCur || seq.Base(bestB) != cur {
			out.Seq[i] = seq.Base(bestB).Char()
		}
	}
	return out
}

// basePosterior computes π_t(b) (§3.3): the posterior that the true base at
// kmer position t of spectrum kmer idx was b, mixing over the incoming
// neighborhood weighted by estimated attempts T. Sources whose T falls
// below the detection threshold are classified non-genomic (α̂ = 0) and
// excluded, substituting the classification into the prior.
func (m *Model) basePosterior(idx, t int, threshold float64) ([4]float64, bool) {
	var pi [4]float64
	total := 0.0
	for _, e := range m.incoming[idx] {
		if m.T[e.src] < threshold {
			continue
		}
		w := m.T[e.src] * e.pe
		if w <= 0 {
			continue
		}
		b := m.Spec.Kmers[e.src].At(t, m.Cfg.K)
		pi[b] += w
		total += w
	}
	if total <= 0 {
		return pi, false
	}
	for b := range pi {
		pi[b] /= total
	}
	return pi, true
}
