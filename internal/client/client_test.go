package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// scriptServer answers each request with the next scripted status; after
// the script runs out it answers 200 with the daemon's stat headers.
func scriptServer(t *testing.T, script ...int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(hits.Add(1)) - 1
		if n < len(script) {
			code := script[n]
			if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
				w.Header().Set("Retry-After", "0")
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(code)
			w.Write([]byte(`{"error":"scripted"}`))
			return
		}
		w.Header().Set("X-Kserve-Reads", "42")
		w.Header().Set("X-Kserve-Changed", "7")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("@r1\nACGT\n+\nIIII\n"))
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

func TestRetriesThenSucceeds(t *testing.T) {
	for _, transient := range []int{429, 503, 500} {
		ts, hits := scriptServer(t, transient, transient)
		c := &Client{MaxRetries: 3, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond}
		res, err := c.Correct(context.Background(), ts.URL, []byte("chunk"))
		if err != nil {
			t.Fatalf("status %d script: %v", transient, err)
		}
		if res.Status != http.StatusOK || res.Attempts != 3 || res.Retries() != 2 || res.GaveUp {
			t.Errorf("status %d script: got %+v, want 200 after 3 attempts", transient, res)
		}
		if res.Reads != 42 || res.Changed != 7 {
			t.Errorf("stat headers not parsed: %+v", res)
		}
		if !strings.HasPrefix(string(res.Body), "@r1") {
			t.Errorf("body = %q", res.Body)
		}
		if got := hits.Load(); got != 3 {
			t.Errorf("server saw %d requests, want 3", got)
		}
	}
}

func TestGivesUpAfterBudget(t *testing.T) {
	ts, hits := scriptServer(t, 503, 503, 503, 503, 503)
	c := &Client{MaxRetries: 2, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond}
	res, err := c.Correct(context.Background(), ts.URL, []byte("chunk"))
	if err != nil {
		t.Fatalf("an HTTP error status is data, not an error: %v", err)
	}
	if res.Status != http.StatusServiceUnavailable || !res.GaveUp || res.Attempts != 3 {
		t.Errorf("got %+v, want gave-up 503 after 3 attempts", res)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3", got)
	}
}

func TestClientErrorsFailFast(t *testing.T) {
	ts, hits := scriptServer(t, 400)
	c := &Client{MaxRetries: 5, BaseBackoff: time.Millisecond}
	res, err := c.Correct(context.Background(), ts.URL, []byte("chunk"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusBadRequest || res.GaveUp || res.Attempts != 1 {
		t.Errorf("got %+v, want an immediate non-retried 400", res)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("server saw %d requests, want 1", got)
	}
}

func TestZeroValueFailsFast(t *testing.T) {
	ts, hits := scriptServer(t, 503)
	var c Client
	res, err := c.Correct(context.Background(), ts.URL, []byte("chunk"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusServiceUnavailable || !res.GaveUp || res.Attempts != 1 {
		t.Errorf("got %+v, want a single gave-up 503 (MaxRetries 0)", res)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("server saw %d requests, want 1", got)
	}
}

func TestTransportErrorRetriesAndReportsError(t *testing.T) {
	ts, _ := scriptServer(t)
	url := ts.URL
	ts.Close() // connection refused from here on
	c := &Client{MaxRetries: 1, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}
	res, err := c.Correct(context.Background(), url, []byte("chunk"))
	if err == nil {
		t.Fatal("want a transport error after exhausting retries")
	}
	if res.Status != 0 || !res.GaveUp || res.Attempts != 2 {
		t.Errorf("got %+v, want gave-up transport failure after 2 attempts", res)
	}
}

func TestContextCancelsBackoff(t *testing.T) {
	ts, _ := scriptServer(t, 503, 503, 503)
	c := &Client{MaxRetries: 5, BaseBackoff: time.Hour, MaxBackoff: time.Hour}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := c.Correct(ctx, ts.URL, []byte("chunk"))
	if err == nil {
		t.Fatal("want ctx error when cancelled mid-backoff")
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Errorf("cancellation took %v; the backoff timer is not honoring ctx", waited)
	}
	if !res.GaveUp || res.Attempts != 1 {
		t.Errorf("got %+v, want gave-up after the first attempt", res)
	}
}

func TestRetryAfterIsTheFloor(t *testing.T) {
	var stamps []time.Time
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		stamps = append(stamps, time.Now())
		if len(stamps) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	// Backoff alone would wait at most ~2ms; Retry-After: 1 must stretch
	// it to a second (within the 10x MaxBackoff trust bound).
	c := &Client{MaxRetries: 1, BaseBackoff: time.Millisecond, MaxBackoff: 150 * time.Millisecond}
	res, err := c.Correct(context.Background(), ts.URL, []byte("chunk"))
	if err != nil || res.Status != http.StatusOK {
		t.Fatalf("res %+v err %v", res, err)
	}
	if len(stamps) != 2 {
		t.Fatalf("server saw %d requests, want 2", len(stamps))
	}
	if gap := stamps[1].Sub(stamps[0]); gap < 900*time.Millisecond {
		t.Errorf("retry after %v, want >= ~1s (Retry-After honored)", gap)
	}
}

// TestPolicyWaitRetryAfterFloor is the deterministic regression test for
// the exported Policy: a 503-quarantined node's Retry-After must floor
// the wait exactly (the jitter is strictly smaller than the floor here),
// and a Retry-After beyond 10x MaxBackoff must clamp to exactly that
// bound — the arithmetic the coordinator fan-out now shares.
func TestPolicyWaitRetryAfterFloor(t *testing.T) {
	p := Policy{BaseBackoff: time.Millisecond, MaxBackoff: time.Second}
	// Jitter for try 0 is in (0, 1ms]; the 7s floor always wins exactly.
	for i := 0; i < 50; i++ {
		if got := p.Wait(0, "7"); got != 7*time.Second {
			t.Fatalf("Wait(0, \"7\") = %v, want exactly 7s", got)
		}
	}
	// 600s > 10*MaxBackoff: clamp to exactly 10s.
	for i := 0; i < 50; i++ {
		if got := p.Wait(0, "600"); got != 10*time.Second {
			t.Fatalf("Wait(0, \"600\") = %v, want the 10x cap (10s)", got)
		}
	}
	// Garbage and negative headers fall back to pure jittered backoff.
	for _, h := range []string{"", "soon", "-3"} {
		if got := p.Wait(0, h); got <= 0 || got > time.Millisecond {
			t.Fatalf("Wait(0, %q) = %v, want jitter in (0, 1ms]", h, got)
		}
	}
	// The jittered component still caps at MaxBackoff for deep retries.
	if got := p.Wait(30, ""); got <= 0 || got > time.Second {
		t.Fatalf("Wait(30, \"\") = %v, want <= MaxBackoff", got)
	}
}

// TestRetryable pins the shared transient-outcome classification.
func TestRetryable(t *testing.T) {
	cases := []struct {
		status int
		err    error
		want   bool
	}{
		{200, nil, false}, {400, nil, false}, {404, nil, false},
		{429, nil, true}, {500, nil, true}, {503, nil, true},
		{0, context.DeadlineExceeded, true},
	}
	for _, c := range cases {
		if got := Retryable(c.status, c.err); got != c.want {
			t.Errorf("Retryable(%d, %v) = %v want %v", c.status, c.err, got, c.want)
		}
	}
}
