// Package client is the retrying HTTP correction client of the serve
// daemon. The daemon's overload and self-healing answers — 429 from the
// admission queue, 503 from a quarantined spectrum — are explicitly
// transient: both carry Retry-After, and the correct client reaction is
// a capped, jittered exponential backoff, not an error to the caller.
// This package encodes that policy once so the loadgen harness, scripts
// and embedding callers cannot each get it subtly wrong.
//
// Retry policy: transport errors, 429, and 5xx responses are retryable
// (the daemon may shed, quarantine-heal, or restart under the caller);
// other 4xx responses are the caller's bug and never retried. Retry-After
// is honored as the wait floor when the daemon sends it.
package client

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// Client issues correction requests with retries. The zero value is
// usable: no retries, a default http.Client, 100ms base and 5s cap.
// A Client is safe for concurrent use when its fields are not mutated.
type Client struct {
	// HTTP is the underlying client (nil selects a fresh default one; set
	// a Timeout on it — the per-attempt bound — when talking to a real
	// daemon).
	HTTP *http.Client
	// MaxRetries is how many times a retryable failure is retried beyond
	// the first attempt (0 = fail fast, n = up to n+1 attempts).
	MaxRetries int
	// BaseBackoff seeds the exponential backoff (<= 0 selects 100ms); the
	// wait before retry i is uniformly jittered in (0, BaseBackoff*2^i],
	// capped at MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps a single wait (<= 0 selects 5s). A daemon
	// Retry-After longer than the cap is trusted up to 10x the cap.
	MaxBackoff time.Duration
}

// Result is the outcome of one Correct call, after retries.
type Result struct {
	// Status is the final HTTP status (0 when every attempt failed in
	// transport).
	Status int
	// Body is the final response body — the corrected chunk on 200, the
	// daemon's JSON error otherwise.
	Body []byte
	// Reads and Changed echo the daemon's X-Kserve-Reads and
	// X-Kserve-Changed tallies of a successful response.
	Reads, Changed int64
	// Attempts counts requests actually sent; Retries() = Attempts - 1.
	Attempts int
	// GaveUp marks a retryable failure (transport error, 429, 5xx) that
	// persisted through the retry budget — as opposed to a non-retryable
	// 4xx, which fails fast with GaveUp false.
	GaveUp bool
}

// Retries is the number of re-sent requests beyond the first attempt.
func (r Result) Retries() int {
	if r.Attempts > 1 {
		return r.Attempts - 1
	}
	return 0
}

// attempt is what one wire round trip produced.
type attempt struct {
	status         int
	body           []byte
	reads, changed int64
	retryAfter     string
	err            error
}

// Policy is the retry-wait schedule the daemon's transient answers call
// for, factored out of Client so other retrying callers — the
// coordinator's shard fan-out in internal/remote — share the exact same
// arithmetic instead of copy-pasting it. The zero value selects the
// Client defaults: 100ms base, 5s cap, no retries.
type Policy struct {
	// MaxRetries is how many times a retryable failure is retried beyond
	// the first attempt (0 = fail fast, n = up to n+1 attempts).
	MaxRetries int
	// BaseBackoff seeds the exponential backoff (<= 0 selects 100ms).
	BaseBackoff time.Duration
	// MaxBackoff caps a single jittered wait (<= 0 selects 5s). A daemon
	// Retry-After longer than the cap is trusted up to 10x the cap.
	MaxBackoff time.Duration
}

// resolve materializes the policy defaults.
func (p Policy) resolve() (base, maxWait time.Duration) {
	base = p.BaseBackoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxWait = p.MaxBackoff
	if maxWait <= 0 {
		maxWait = 5 * time.Second
	}
	return base, maxWait
}

// Wait computes the pause before retry `try` (0-based), honoring the
// server's delay-seconds Retry-After header as the wait floor. The
// jittered component is uniform in (0, base*2^try] capped at the
// policy's MaxBackoff — full jitter decorrelates a thundering herd of
// clients retrying the same shed. A Retry-After longer than the jittered
// wait is trusted as the floor, but only up to 10x MaxBackoff: beyond
// that it is a misconfiguration, not a schedule.
func (p Policy) Wait(try int, retryAfterHeader string) time.Duration {
	base, maxWait := p.resolve()
	wait := backoff(base, maxWait, try)
	if ra := retryAfter(retryAfterHeader); ra > wait {
		if lid := 10 * maxWait; ra > lid {
			ra = lid
		}
		wait = ra
	}
	return wait
}

// Sleep waits out Wait(try, retryAfterHeader) or the context, whichever
// ends first; the context's error is returned when it won.
func (p Policy) Sleep(ctx context.Context, try int, retryAfterHeader string) error {
	timer := time.NewTimer(p.Wait(try, retryAfterHeader))
	select {
	case <-ctx.Done():
		timer.Stop()
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// Retryable reports whether an attempt outcome warrants a retry under
// the daemon's contract: transport errors, 429 (admission shed) and 5xx
// (quarantine, restart) are transient; other statuses are final.
func Retryable(status int, err error) bool {
	return err != nil || status == http.StatusTooManyRequests || status >= 500
}

// policy assembles the client's embedded retry policy.
func (c *Client) policy() Policy {
	return Policy{MaxRetries: c.MaxRetries, BaseBackoff: c.BaseBackoff, MaxBackoff: c.MaxBackoff}
}

// Correct posts one encoded FASTQ chunk to a correction endpoint (full
// URL, query included), retrying per the client's policy. The error is
// non-nil only when the final attempt failed in transport — an HTTP
// error status is data in Result, not an error.
func (c *Client) Correct(ctx context.Context, url string, chunk []byte) (Result, error) {
	httpc := c.HTTP
	if httpc == nil {
		httpc = &http.Client{}
	}
	pol := c.policy()

	var res Result
	for try := 0; ; try++ {
		a := post(ctx, httpc, url, chunk)
		res.Status, res.Body = a.status, a.body
		res.Reads, res.Changed = a.reads, a.changed
		res.Attempts = try + 1
		if !Retryable(a.status, a.err) {
			return res, nil
		}
		if try >= c.MaxRetries {
			res.GaveUp = true
			return res, a.err
		}
		if err := pol.Sleep(ctx, try, a.retryAfter); err != nil {
			res.GaveUp = true
			if a.err == nil {
				a.err = err
			}
			return res, a.err
		}
	}
}

// backoff is the uniformly-jittered exponential wait before retry
// `try`: (0, base*2^try] capped at ceil.
func backoff(base, ceil time.Duration, try int) time.Duration {
	d := base << uint(try)
	if d <= 0 || d > ceil {
		d = ceil
	}
	return time.Duration(1 + rand.Int63n(int64(d)))
}

// retryAfter parses a delay-seconds Retry-After header (0 when absent,
// unparsable, or an HTTP-date — the daemon only sends seconds).
func retryAfter(header string) time.Duration {
	if header == "" {
		return 0
	}
	secs, err := strconv.Atoi(header)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// post sends one correction attempt and parses the daemon's stat
// headers.
func post(ctx context.Context, httpc *http.Client, url string, chunk []byte) attempt {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(chunk))
	if err != nil {
		return attempt{err: err}
	}
	req.Header.Set("Content-Type", "text/x-fastq")
	resp, err := httpc.Do(req)
	if err != nil {
		return attempt{err: err}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		// A torn response body is a transport failure: retryable.
		return attempt{err: err}
	}
	a := attempt{status: resp.StatusCode, body: body, retryAfter: resp.Header.Get("Retry-After")}
	if h := resp.Header.Get("X-Kserve-Reads"); h != "" {
		a.reads, _ = strconv.ParseInt(h, 10, 64)
	}
	if h := resp.Header.Get("X-Kserve-Changed"); h != "" {
		a.changed, _ = strconv.ParseInt(h, 10, 64)
	}
	return a
}
