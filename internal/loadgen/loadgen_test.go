package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunTallies drives the generator against a stub daemon that sheds
// every third request, and checks the report's accounting: outcomes
// partition the requests, reads follow the X-Kserve-Reads header, and
// percentiles come from successful requests.
func TestRunTallies(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%3 == 0 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Header().Set("X-Kserve-Reads", "5")
		w.Write([]byte("@r\nACGT\n+\nIIII\n"))
	}))
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		URL:         ts.URL + "/v2/correct",
		Chunks:      [][]byte{[]byte("@r\nACGT\n+\nIIII\n")},
		Concurrency: 3,
		Duration:    300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests issued")
	}
	if got := rep.OK + rep.Shed + rep.Client4xx + rep.Server5xx + rep.Failed; got != rep.Requests {
		t.Errorf("outcomes sum to %d, requests = %d", got, rep.Requests)
	}
	if rep.OK == 0 || rep.Shed == 0 {
		t.Errorf("want both OK and shed outcomes, got ok=%d shed=%d", rep.OK, rep.Shed)
	}
	if rep.Server5xx != 0 || rep.Failed != 0 {
		t.Errorf("unexpected failures: 5xx=%d failed=%d", rep.Server5xx, rep.Failed)
	}
	if want := int64(5 * rep.OK); rep.Reads != want {
		t.Errorf("reads = %d want %d", rep.Reads, want)
	}
	if rep.ShedRate <= 0 || rep.ShedRate >= 1 {
		t.Errorf("shed rate = %g want in (0,1)", rep.ShedRate)
	}
	if rep.P50Ms <= 0 || rep.P99Ms < rep.P50Ms || rep.MaxMs < rep.P99Ms {
		t.Errorf("percentiles not ordered: p50=%g p99=%g max=%g", rep.P50Ms, rep.P99Ms, rep.MaxMs)
	}
	if rep.Seconds <= 0 || rep.QPS <= 0 {
		t.Errorf("rates not populated: seconds=%g qps=%g", rep.Seconds, rep.QPS)
	}
}

// TestRunRateCap checks the QPS cap: a fast stub and a generous worker
// pool must not exceed the target rate by more than ticker jitter.
func TestRunRateCap(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	rep, err := Run(context.Background(), Config{
		URL:         ts.URL,
		Chunks:      [][]byte{[]byte("x")},
		QPS:         50,
		Concurrency: 8,
		Duration:    500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 50 QPS for 0.5s is ~25 requests; allow wide slack for CI timers,
	// but an uncapped run would do thousands.
	if rep.Requests > 60 {
		t.Errorf("rate cap ignored: %d requests in %.2fs at 50 QPS", rep.Requests, rep.Seconds)
	}
}

func TestRunConfigErrors(t *testing.T) {
	if _, err := Run(context.Background(), Config{Chunks: [][]byte{[]byte("x")}}); err == nil {
		t.Error("missing URL did not error")
	}
	if _, err := Run(context.Background(), Config{URL: "http://x"}); err == nil {
		t.Error("missing chunks did not error")
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0.5, 5}, {0.9, 9}, {0.99, 10}, {1, 10}} {
		if got := percentile(sorted, tc.q); got != tc.want {
			t.Errorf("percentile(%g) = %g want %g", tc.q, got, tc.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile of empty = %g want 0", got)
	}
}
