package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunTallies drives the generator against a stub daemon that sheds
// every third request, and checks the report's accounting: outcomes
// partition the requests, reads follow the X-Kserve-Reads header, and
// percentiles come from successful requests.
func TestRunTallies(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%3 == 0 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Header().Set("X-Kserve-Reads", "5")
		w.Write([]byte("@r\nACGT\n+\nIIII\n"))
	}))
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		URL:         ts.URL + "/v2/correct",
		Chunks:      [][]byte{[]byte("@r\nACGT\n+\nIIII\n")},
		Concurrency: 3,
		Duration:    300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests issued")
	}
	if got := rep.OK + rep.Shed + rep.Client4xx + rep.Server5xx + rep.Failed; got != rep.Requests {
		t.Errorf("outcomes sum to %d, requests = %d", got, rep.Requests)
	}
	if rep.OK == 0 || rep.Shed == 0 {
		t.Errorf("want both OK and shed outcomes, got ok=%d shed=%d", rep.OK, rep.Shed)
	}
	if rep.Server5xx != 0 || rep.Failed != 0 {
		t.Errorf("unexpected failures: 5xx=%d failed=%d", rep.Server5xx, rep.Failed)
	}
	if want := int64(5 * rep.OK); rep.Reads != want {
		t.Errorf("reads = %d want %d", rep.Reads, want)
	}
	if rep.ShedRate <= 0 || rep.ShedRate >= 1 {
		t.Errorf("shed rate = %g want in (0,1)", rep.ShedRate)
	}
	if rep.P50Ms <= 0 || rep.P99Ms < rep.P50Ms || rep.MaxMs < rep.P99Ms {
		t.Errorf("percentiles not ordered: p50=%g p99=%g max=%g", rep.P50Ms, rep.P99Ms, rep.MaxMs)
	}
	if rep.Seconds <= 0 || rep.QPS <= 0 {
		t.Errorf("rates not populated: seconds=%g qps=%g", rep.Seconds, rep.QPS)
	}
}

// TestRunRetries turns the retry budget on against a stub that 429s
// every other request: shed responses are retried into successes, the
// report tallies the retries, and when the stub turns permanently sick
// the budget runs out and gave_up counts it.
func TestRunRetries(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%2 == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Header().Set("X-Kserve-Reads", "5")
		w.Write([]byte("@r\nACGT\n+\nIIII\n"))
	}))
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		URL:         ts.URL + "/v2/correct",
		Chunks:      [][]byte{[]byte("@r\nACGT\n+\nIIII\n")},
		Concurrency: 1,
		Duration:    400 * time.Millisecond,
		MaxRetries:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests issued")
	}
	// Every other wire response sheds, so with retries every recorded
	// request should succeed — the shed surfaces as retries, not outcomes.
	if rep.Shed != 0 || rep.GaveUp != 0 {
		t.Errorf("retryable sheds leaked into outcomes: shed=%d gave_up=%d", rep.Shed, rep.GaveUp)
	}
	if rep.OK != rep.Requests {
		t.Errorf("ok=%d want all %d requests", rep.OK, rep.Requests)
	}
	if rep.Retries == 0 {
		t.Error("retries = 0, want the shed responses counted as retries")
	}

	// A permanently sick daemon exhausts the budget: gave_up counts it and
	// the final 503 lands in server_5xx, keeping the outcome partition.
	sick := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer sick.Close()
	rep, err = Run(context.Background(), Config{
		URL:         sick.URL,
		Chunks:      [][]byte{[]byte("x")},
		Concurrency: 1,
		Duration:    300 * time.Millisecond,
		MaxRetries:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.GaveUp != rep.Requests || rep.Server5xx != rep.Requests {
		t.Errorf("sick daemon: requests=%d gave_up=%d server_5xx=%d, want all equal and nonzero",
			rep.Requests, rep.GaveUp, rep.Server5xx)
	}
	if rep.Retries != rep.Requests {
		t.Errorf("retries=%d want %d (one retry per request)", rep.Retries, rep.Requests)
	}
}

// TestRunRateCap checks the QPS cap: a fast stub and a generous worker
// pool must not exceed the target rate by more than ticker jitter.
func TestRunRateCap(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	rep, err := Run(context.Background(), Config{
		URL:         ts.URL,
		Chunks:      [][]byte{[]byte("x")},
		QPS:         50,
		Concurrency: 8,
		Duration:    500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 50 QPS for 0.5s is ~25 requests; allow wide slack for CI timers,
	// but an uncapped run would do thousands.
	if rep.Requests > 60 {
		t.Errorf("rate cap ignored: %d requests in %.2fs at 50 QPS", rep.Requests, rep.Seconds)
	}
}

func TestRunConfigErrors(t *testing.T) {
	if _, err := Run(context.Background(), Config{Chunks: [][]byte{[]byte("x")}}); err == nil {
		t.Error("missing URL did not error")
	}
	if _, err := Run(context.Background(), Config{URL: "http://x"}); err == nil {
		t.Error("missing chunks did not error")
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0.5, 5}, {0.9, 9}, {0.99, 10}, {1, 10}} {
		if got := percentile(sorted, tc.q); got != tc.want {
			t.Errorf("percentile(%g) = %g want %g", tc.q, got, tc.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile of empty = %g want 0", got)
	}
}
