// Package loadgen replays FASTQ correction chunks against a running
// serve daemon at a target rate and reports service-level results:
// latency percentiles, throughput, and the shed rate of the daemon's
// admission queue. It is the measurement half of the daemon's
// production-hardening story — the serve side bounds and sheds load,
// loadgen observes what a client actually experiences under it.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/client"
)

// Config parameterizes one load run.
type Config struct {
	// URL is the full correction endpoint, query included
	// (e.g. http://127.0.0.1:8424/v2/correct?engine=reptile&spectrum=main).
	URL string
	// Chunks are the request bodies (encoded FASTQ chunks), cycled
	// round-robin across requests. At least one is required.
	Chunks [][]byte
	// QPS caps the aggregate request rate; <= 0 means closed-loop — every
	// worker fires its next request as soon as the previous one returns.
	QPS float64
	// Concurrency is the number of client workers (<= 0 selects 4).
	Concurrency int
	// Duration is how long to generate load (<= 0 selects 10s).
	Duration time.Duration
	// Timeout is the per-request client timeout (<= 0 selects 1m).
	Timeout time.Duration
	// MaxRetries is how many times each worker retries a retryable
	// failure (transport error, 429, 5xx) before recording the outcome,
	// with the client package's capped jittered backoff honoring
	// Retry-After. 0 — the default — records every wire response as its
	// own outcome, exactly the pre-retry behavior, so existing BENCH
	// baselines stay comparable.
	MaxRetries int
	// Client overrides the HTTP client (tests); nil builds one.
	Client *http.Client
}

// Report is the machine-readable result of a load run. Latency
// percentiles are over successful (200) requests only — shed responses
// return in microseconds and would make the percentiles flatter the
// harder the daemon sheds, exactly backwards.
type Report struct {
	Requests  int     `json:"requests"`
	OK        int     `json:"ok"`
	Shed      int     `json:"shed"`       // 429 responses from the admission queue
	Client4xx int     `json:"client_4xx"` // non-429 4xx
	Server5xx int     `json:"server_5xx"`
	Failed    int     `json:"failed"`  // transport errors (connect, timeout)
	Retries   int     `json:"retries"` // re-sent attempts beyond each request's first
	GaveUp    int     `json:"gave_up"` // requests whose retry budget ran out on a retryable failure
	Reads     int64   `json:"reads"`   // summed X-Kserve-Reads of OK responses
	Seconds   float64 `json:"seconds"`

	QPS         float64 `json:"qps"`        // achieved request rate, all outcomes
	OKPerSec    float64 `json:"ok_per_sec"` // successful corrections per second
	ReadsPerSec float64 `json:"reads_per_sec"`
	ShedRate    float64 `json:"shed_rate"` // shed / requests

	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

// Run generates load per cfg until the duration elapses or ctx is
// cancelled, then merges per-worker tallies into one Report. The error
// is non-nil only for unusable configuration — request-level failures
// are data (Report.Failed), not errors.
func Run(ctx context.Context, cfg Config) (Report, error) {
	if cfg.URL == "" {
		return Report{}, errors.New("loadgen: URL is required")
	}
	if len(cfg.Chunks) == 0 {
		return Report{}, errors.New("loadgen: at least one chunk is required")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = time.Minute
	}
	httpc := cfg.Client
	if httpc == nil {
		httpc = &http.Client{Timeout: cfg.Timeout}
	}
	// One shared retrying client: the retry policy (capped jittered
	// backoff, Retry-After honored on 429/503, fail fast on other 4xx)
	// lives in the client package, loadgen only tallies what it did.
	corr := &client.Client{HTTP: httpc, MaxRetries: cfg.MaxRetries}

	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	// Rate cap: a shared token stream at the target rate. Workers block
	// for a token before each request, so the aggregate rate is capped at
	// QPS regardless of concurrency; when the daemon is slower than the
	// target the tokens go unconsumed and the run degrades to closed-loop
	// at the daemon's pace (the ticker drops, it does not queue a burst).
	var tokens <-chan time.Time
	if cfg.QPS > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / cfg.QPS))
		defer t.Stop()
		tokens = t.C
	}

	type tally struct {
		Report
		latencies []float64 // milliseconds, OK requests only
	}
	tallies := make([]tally, cfg.Concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			t := &tallies[w]
			for i := w; ; i++ {
				if tokens != nil {
					select {
					case <-tokens:
					case <-ctx.Done():
						return
					}
				} else if ctx.Err() != nil {
					return
				}
				chunk := cfg.Chunks[i%len(cfg.Chunks)]
				reqStart := time.Now()
				res, err := corr.Correct(ctx, cfg.URL, chunk)
				if ctx.Err() != nil && err != nil {
					// The run deadline killed the request mid-flight;
					// not an observation about the daemon.
					return
				}
				t.Requests++
				t.Retries += res.Retries()
				if res.GaveUp {
					t.GaveUp++
				}
				switch {
				case err != nil:
					t.Failed++
				case res.Status == http.StatusOK:
					t.OK++
					t.Reads += res.Reads
					t.latencies = append(t.latencies, float64(time.Since(reqStart).Nanoseconds())/1e6)
				case res.Status == http.StatusTooManyRequests:
					t.Shed++
				case res.Status >= 500:
					t.Server5xx++
				default:
					t.Client4xx++
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var rep Report
	var lat []float64
	for i := range tallies {
		t := &tallies[i]
		rep.Requests += t.Requests
		rep.OK += t.OK
		rep.Shed += t.Shed
		rep.Client4xx += t.Client4xx
		rep.Server5xx += t.Server5xx
		rep.Failed += t.Failed
		rep.Retries += t.Retries
		rep.GaveUp += t.GaveUp
		rep.Reads += t.Reads
		lat = append(lat, t.latencies...)
	}
	rep.Seconds = elapsed.Seconds()
	if rep.Seconds > 0 {
		rep.QPS = float64(rep.Requests) / rep.Seconds
		rep.OKPerSec = float64(rep.OK) / rep.Seconds
		rep.ReadsPerSec = float64(rep.Reads) / rep.Seconds
	}
	if rep.Requests > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(rep.Requests)
	}
	sort.Float64s(lat)
	rep.P50Ms = percentile(lat, 0.50)
	rep.P90Ms = percentile(lat, 0.90)
	rep.P99Ms = percentile(lat, 0.99)
	if n := len(lat); n > 0 {
		rep.MaxMs = lat[n-1]
	}
	return rep, nil
}

// String renders the headline numbers for human eyes; the JSON encoding
// of the struct is the machine contract.
func (r Report) String() string {
	return fmt.Sprintf("%d requests in %.1fs: %d ok (%.1f/s, %.0f reads/s), %d shed (%.1f%%), %d client-err, %d server-err, %d failed; %d retries, %d gave up; p50 %.1fms p90 %.1fms p99 %.1fms",
		r.Requests, r.Seconds, r.OK, r.OKPerSec, r.ReadsPerSec, r.Shed, 100*r.ShedRate, r.Client4xx, r.Server5xx, r.Failed, r.Retries, r.GaveUp, r.P50Ms, r.P90Ms, r.P99Ms)
}

// percentile is the nearest-rank percentile of a sorted sample (0 when
// empty).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(float64(len(sorted))*q+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
