// Package sketch implements the shingling/sketching machinery CLOSET adapts
// from web-document clustering (§4.3.1): each read is converted to the set
// of 64-bit hashes of its constituent kmers; round l of M selects the subset
// of hashes congruent to l modulo M as the read's sketch. Reads sharing
// sketch values become candidate pairs without any all-vs-all comparison.
package sketch

import (
	"fmt"
	"sort"

	"repro/internal/seq"
)

// Params configures sketching.
type Params struct {
	K int // shingle (kmer) length; §4.5.1 uses k=15 so 4^k >> rRNA length
	M int // modulus: expected fraction of hashes kept per round is 1/M
	// Rounds is how many of the M possible sketches are generated (the
	// paper finds l=3 sufficient to capture candidate edges).
	Rounds int
}

// DefaultParams follows §4.5.1: k=15 and a modulus chosen so reads carry
// roughly 5-16 sketch values each, with 3 rounds.
func DefaultParams(meanReadLen int) Params {
	m := meanReadLen / 10
	if m < 1 {
		m = 1
	}
	return Params{K: 15, M: m, Rounds: 3}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.K <= 0 || p.K > seq.MaxK {
		return fmt.Errorf("sketch: invalid k=%d", p.K)
	}
	if p.M < 1 {
		return fmt.Errorf("sketch: modulus must be >= 1")
	}
	if p.Rounds < 1 || p.Rounds > p.M {
		return fmt.Errorf("sketch: rounds must be in [1, M], got %d with M=%d", p.Rounds, p.M)
	}
	return nil
}

// mix is the SplitMix64 finalizer: the universal-ish hash mapping packed
// kmers into the 64-bit integer space.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Shingles returns the sorted distinct hash set H_i of a read: one 64-bit
// hash per clean kmer window.
func Shingles(bases []byte, k int) []uint64 {
	if len(bases) < k {
		return nil
	}
	out := make([]uint64, 0, len(bases)-k+1)
	var km seq.Kmer
	valid := 0
	for _, ch := range bases {
		b, ok := seq.BaseFromChar(ch)
		if !ok {
			valid = 0
			continue
		}
		km = km.Append(b, k)
		valid++
		if valid >= k {
			out = append(out, mix(uint64(km)))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return dedupSorted(out)
}

func dedupSorted(xs []uint64) []uint64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// Select returns the round-l sketch S_i: hashes congruent to l modulo M.
func Select(hashes []uint64, m, round int) []uint64 {
	var out []uint64
	for _, h := range hashes {
		if h%uint64(m) == uint64(round) {
			out = append(out, h)
		}
	}
	return out
}

// Similarity is the containment-style measure of §4.3.1:
// |A ∩ B| / min(|A|, |B|) over sorted distinct hash sets, designed so a
// read contained in another scores 1.
func Similarity(a, b []uint64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := IntersectionSize(a, b)
	return float64(inter) / float64(min(len(a), len(b)))
}

// IntersectionSize counts common elements of two sorted distinct sets.
func IntersectionSize(a, b []uint64) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}
