package sketch

import (
	"math/rand"
	"testing"

	"repro/internal/simulate"
)

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{K: 0, M: 5, Rounds: 1},
		{K: 40, M: 5, Rounds: 1},
		{K: 15, M: 0, Rounds: 1},
		{K: 15, M: 5, Rounds: 0},
		{K: 15, M: 5, Rounds: 6},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected error for %+v", i, p)
		}
	}
	if err := DefaultParams(375).Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
}

func TestShinglesBasic(t *testing.T) {
	h := Shingles([]byte("ACGTACGT"), 4)
	// Windows: ACGT CGTA GTAC TACG ACGT -> 4 distinct.
	if len(h) != 4 {
		t.Fatalf("got %d shingles want 4", len(h))
	}
	for i := 1; i < len(h); i++ {
		if h[i] <= h[i-1] {
			t.Fatal("shingles not sorted-distinct")
		}
	}
	if Shingles([]byte("ACG"), 4) != nil {
		t.Error("short read should give no shingles")
	}
}

func TestShinglesSkipAmbiguous(t *testing.T) {
	with := Shingles([]byte("ACGTNACGT"), 4)
	without := Shingles([]byte("ACGT"), 4)
	if len(with) != len(without) {
		t.Errorf("N handling: %d vs %d", len(with), len(without))
	}
}

func TestSelectPartitionsShingles(t *testing.T) {
	h := Shingles([]byte("ACGTACGGTTACGATCAGTTACGGATCGAT"), 8)
	m := 4
	total := 0
	seen := map[uint64]bool{}
	for l := 0; l < m; l++ {
		s := Select(h, m, l)
		total += len(s)
		for _, v := range s {
			if seen[v] {
				t.Fatal("value selected twice")
			}
			seen[v] = true
		}
	}
	if total != len(h) {
		t.Errorf("rounds cover %d of %d values", total, len(h))
	}
}

func TestSimilarityProperties(t *testing.T) {
	a := []uint64{1, 2, 3, 4}
	b := []uint64{3, 4, 5, 6, 7, 8}
	if got := Similarity(a, b); got != 0.5 {
		t.Errorf("similarity = %v want 0.5", got)
	}
	// Containment scores 1.
	if got := Similarity([]uint64{3, 4}, b); got != 1 {
		t.Errorf("containment similarity = %v want 1", got)
	}
	if Similarity(nil, b) != 0 {
		t.Error("empty set similarity should be 0")
	}
	// Symmetry.
	if Similarity(a, b) != Similarity(b, a) {
		t.Error("similarity not symmetric")
	}
}

func TestSimilarityTracksSequenceIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base, _ := simulate.RandomGenome(400, simulate.UniformProfile, rng)
	// A 3% mutated copy should stay similar; a random read should not.
	mutated := append([]byte(nil), base...)
	for i := 0; i < 12; i++ {
		pos := rng.Intn(len(mutated))
		mutated[pos] = "ACGT"[rng.Intn(4)]
	}
	other, _ := simulate.RandomGenome(400, simulate.UniformProfile, rng)
	k := 15
	hBase := Shingles(base, k)
	hMut := Shingles(mutated, k)
	hOther := Shingles(other, k)
	simMut := Similarity(hBase, hMut)
	simOther := Similarity(hBase, hOther)
	if simMut < 0.4 {
		t.Errorf("3%%-diverged similarity = %v, too low", simMut)
	}
	if simOther > 0.05 {
		t.Errorf("unrelated similarity = %v, too high", simOther)
	}
	if simMut <= simOther {
		t.Error("similarity does not order by identity")
	}
}

func TestIntersectionSize(t *testing.T) {
	if got := IntersectionSize([]uint64{1, 3, 5}, []uint64{2, 3, 4, 5}); got != 2 {
		t.Errorf("intersection = %d want 2", got)
	}
	if got := IntersectionSize(nil, []uint64{1}); got != 0 {
		t.Errorf("empty intersection = %d", got)
	}
}
