package metrics

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("reqs_total", "requests")
	g := r.NewGauge("inflight", "in flight")
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if c.Value() != 5 {
		t.Errorf("counter = %d want 5", c.Value())
	}
	if g.Value() != 5 {
		t.Errorf("gauge = %d want 5", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d want 5", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.1+0.5+2+100; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %g want %g", got, want)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Cumulative buckets: 0.1 is an inclusive upper bound.
	for _, line := range []string{
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_count 5`,
		"# TYPE lat_seconds histogram",
	} {
		if !strings.Contains(out, line) {
			t.Errorf("exposition missing %q in:\n%s", line, out)
		}
	}
}

func TestVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("engine_reqs_total", "per engine", "engine", "spectrum")
	v.With("reptile", "main").Add(3)
	v.With("redeem", "main").Inc()
	if v.With("reptile", "main") != v.With("reptile", "main") {
		t.Error("With not stable for equal label values")
	}
	hv := r.NewHistogramVec("engine_seconds", "per engine latency", []float64{1}, "engine")
	hv.With("reptile").Observe(0.5)
	gv := r.NewGaugeVec("slots", "slot occupancy", "kind")
	gv.With("queued").Set(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range []string{
		`engine_reqs_total{engine="redeem",spectrum="main"} 1`,
		`engine_reqs_total{engine="reptile",spectrum="main"} 3`,
		`engine_seconds_bucket{engine="reptile",le="1"} 1`,
		`engine_seconds_count{engine="reptile"} 1`,
		`slots{kind="queued"} 2`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("exposition missing %q in:\n%s", line, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("weird_total", "escaping", "name")
	v.With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if want := `weird_total{name="a\"b\\c\nd"} 1`; !strings.Contains(b.String(), want) {
		t.Errorf("exposition missing %q in:\n%s", want, b.String())
	}
}

func TestServeHTTP(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("ok_total", "ok").Inc()
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "ok_total 1") {
		t.Errorf("body = %q", rec.Body.String())
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Error("second registration of dup_total did not panic")
		}
	}()
	r.NewCounter("dup_total", "")
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, fn := range []func(){
		func() { r.NewCounter("0bad", "") },
		func() { r.NewCounterVec("okname_total", "", "0badlabel") },
		func() { r.NewHistogram("unsorted", "", []float64{2, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid registration did not panic")
				}
			}()
			fn()
		}()
	}
}

// TestConcurrentObserve exercises the atomic paths under the race
// detector: concurrent counter/gauge/histogram updates plus vec child
// creation and a render in flight.
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "")
	h := r.NewHistogramVec("h_seconds", "", []float64{0.5, 1}, "who")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			who := string(rune('a' + i%3))
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.With(who).Observe(float64(j%3) / 2)
			}
		}(i)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d want 8000", c.Value())
	}
	total := uint64(0)
	for _, who := range []string{"a", "b", "c"} {
		total += h.With(who).Count()
	}
	if total != 8000 {
		t.Errorf("histogram observations = %d want 8000", total)
	}
}
