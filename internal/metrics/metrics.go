// Package metrics is the daemon's dependency-free instrumentation
// kernel: counters, gauges and fixed-bucket histograms whose hot-path
// operations (Inc/Add/Set/Observe) are single atomic updates with no
// allocation, rendered on demand in the Prometheus text exposition
// format (version 0.0.4).
//
// The package deliberately implements the small subset of the Prometheus
// data model the correction daemon needs — monotonic counters, settable
// gauges, cumulative fixed-bucket histograms, and labeled families of
// each — instead of depending on the client library: the repro module is
// stdlib-only, and the serving hot path must not allocate per
// observation. Labeled children are resolved once (With) and the handle
// cached by the caller where the label set is stable; resolving a child
// costs one map lookup under a read lock plus one small key allocation,
// so even un-cached resolution is far below the cost of the FASTQ work
// it accounts for.
//
// A Registry is an isolated metric namespace: every server owns its own,
// so tests and embedded handlers never share state through globals.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefLatencyBuckets is the default histogram layout for request
// latencies, in seconds: 1ms to 10s, roughly logarithmic — wide enough
// for a corrections daemon whose requests range from sub-millisecond
// cache-warm chunks to multi-second cold EM fits.
var DefLatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (n may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// atomicFloat accumulates a float64 with compare-and-swap on its bits —
// the histogram sum cannot be an integer without losing sub-unit
// observations (latencies are fractions of a second).
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

func (f *atomicFloat) value() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram is a cumulative fixed-bucket histogram. Buckets are chosen
// at construction and never change, so Observe is a linear scan over a
// small slice plus three atomic updates — no locks, no allocation.
type Histogram struct {
	// bounds are the inclusive upper bounds of the finite buckets,
	// ascending; an implicit +Inf bucket catches the rest.
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; per-bucket (not cumulative) counts
	count   atomic.Uint64
	sum     atomicFloat
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// Count reads the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reads the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.value() }

// kind is the family's exposition TYPE.
type kind string

const (
	counterKind   kind = "counter"
	gaugeKind     kind = "gauge"
	histogramKind kind = "histogram"
)

// vec is a labeled family of metric children, keyed by the joined label
// values. Lookup is read-locked; the first use of a label set upgrades
// to a write lock and materializes the child.
type vec[M any] struct {
	labelNames []string
	mk         func() *M

	mu     sync.RWMutex
	byKey  map[string]*M
	labels map[string][]string
}

func newVec[M any](labelNames []string, mk func() *M) *vec[M] {
	return &vec[M]{
		labelNames: labelNames,
		mk:         mk,
		byKey:      make(map[string]*M),
		labels:     make(map[string][]string),
	}
}

func (v *vec[M]) with(values ...string) *M {
	if len(values) != len(v.labelNames) {
		panic(fmt.Sprintf("metrics: %d label values for %d label names %v", len(values), len(v.labelNames), v.labelNames))
	}
	key := strings.Join(values, "\x1f")
	v.mu.RLock()
	m := v.byKey[key]
	v.mu.RUnlock()
	if m != nil {
		return m
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if m := v.byKey[key]; m != nil {
		return m
	}
	m = v.mk()
	v.byKey[key] = m
	v.labels[key] = append([]string(nil), values...)
	return m
}

// snapshot returns the children with their label values, sorted by key
// for stable exposition output.
func (v *vec[M]) snapshot() []struct {
	labels []string
	m      *M
} {
	v.mu.RLock()
	defer v.mu.RUnlock()
	keys := make([]string, 0, len(v.byKey))
	for k := range v.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]struct {
		labels []string
		m      *M
	}, 0, len(keys))
	for _, k := range keys {
		out = append(out, struct {
			labels []string
			m      *M
		}{v.labels[k], v.byKey[k]})
	}
	return out
}

// CounterVec is a labeled family of counters.
type CounterVec struct {
	*vec[Counter]
}

// With resolves (creating on first use) the child for the label values.
func (v *CounterVec) With(values ...string) *Counter { return v.with(values...) }

// GaugeVec is a labeled family of gauges.
type GaugeVec struct {
	*vec[Gauge]
}

// With resolves (creating on first use) the child for the label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.with(values...) }

// HistogramVec is a labeled family of histograms sharing one bucket
// layout.
type HistogramVec struct {
	*vec[Histogram]
}

// With resolves (creating on first use) the child for the label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.with(values...) }

// family is one registered metric name: its metadata plus a renderer.
type family struct {
	name, help string
	kind       kind
	render     func(w io.Writer, name string)
}

// Registry is an isolated namespace of metric families. The zero value
// is not usable; construct with NewRegistry. Registering the same name
// twice panics — it can only happen at wiring time, and a silent second
// family would split the series.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

var (
	nameRE  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

func (r *Registry) register(name, help string, k kind, render func(io.Writer, string)) {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.fams[name]; dup {
		panic(fmt.Sprintf("metrics: %q registered twice", name))
	}
	r.fams[name] = &family{name: name, help: help, kind: k, render: render}
}

func checkLabels(names []string) {
	for _, n := range names {
		if !labelRE.MatchString(n) {
			panic(fmt.Sprintf("metrics: invalid label name %q", n))
		}
	}
}

// NewCounter registers and returns an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, counterKind, func(w io.Writer, name string) {
		fmt.Fprintf(w, "%s %s\n", name, formatUint(c.Value()))
	})
	return c
}

// NewCounterVec registers and returns a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labelNames ...string) *CounterVec {
	checkLabels(labelNames)
	v := &CounterVec{newVec(labelNames, func() *Counter { return &Counter{} })}
	r.register(name, help, counterKind, func(w io.Writer, name string) {
		for _, ch := range v.snapshot() {
			fmt.Fprintf(w, "%s%s %s\n", name, renderLabels(labelNames, ch.labels, "", 0), formatUint(ch.m.Value()))
		}
	})
	return v
}

// NewGauge registers and returns an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, gaugeKind, func(w io.Writer, name string) {
		fmt.Fprintf(w, "%s %d\n", name, g.Value())
	})
	return g
}

// NewGaugeVec registers and returns a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labelNames ...string) *GaugeVec {
	checkLabels(labelNames)
	v := &GaugeVec{newVec(labelNames, func() *Gauge { return &Gauge{} })}
	r.register(name, help, gaugeKind, func(w io.Writer, name string) {
		for _, ch := range v.snapshot() {
			fmt.Fprintf(w, "%s%s %d\n", name, renderLabels(labelNames, ch.labels, "", 0), ch.m.Value())
		}
	})
	return v
}

// NewHistogram registers and returns an unlabeled histogram; nil or
// empty bounds select DefLatencyBuckets.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(bounds)
	r.register(name, help, histogramKind, func(w io.Writer, name string) {
		renderHistogram(w, name, nil, nil, h)
	})
	return h
}

// NewHistogramVec registers and returns a labeled histogram family; nil
// or empty bounds select DefLatencyBuckets.
func (r *Registry) NewHistogramVec(name, help string, bounds []float64, labelNames ...string) *HistogramVec {
	checkLabels(labelNames)
	v := &HistogramVec{newVec(labelNames, func() *Histogram { return newHistogram(bounds) })}
	r.register(name, help, histogramKind, func(w io.Writer, name string) {
		for _, ch := range v.snapshot() {
			renderHistogram(w, name, labelNames, ch.labels, ch.m)
		}
	})
	return v
}

// WritePrometheus renders every registered family in the text exposition
// format, families sorted by name for stable scrapes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	bw := &errWriter{w: w}
	for _, f := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		f.render(bw, f.name)
	}
	return bw.err
}

// ServeHTTP exposes the registry as a Prometheus scrape endpoint.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// The status line is out; a render failure mid-body only means the
	// scraper went away.
	_ = r.WritePrometheus(w)
}

// errWriter remembers the first write failure so rendering can stop
// pretending after the scraper disconnects.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return 0, ew.err
	}
	n, err := ew.w.Write(p)
	ew.err = err
	return n, err
}

// renderHistogram writes the _bucket/_sum/_count series of one child.
// Bucket counts are stored per-bucket and exposed cumulatively, as the
// format requires.
func renderHistogram(w io.Writer, name string, labelNames, labelValues []string, h *Histogram) {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %s\n", name,
			renderLabels(labelNames, labelValues, "le", bound), formatUint(cum))
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %s\n", name,
		renderLabels(labelNames, labelValues, "le", math.Inf(1)), formatUint(cum))
	fmt.Fprintf(w, "%s_sum%s %s\n", name,
		renderLabels(labelNames, labelValues, "", 0), formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %s\n", name,
		renderLabels(labelNames, labelValues, "", 0), formatUint(h.Count()))
}

// renderLabels formats a {k="v",...} block, optionally appending an le
// bound label; it returns "" when there is nothing to render.
func renderLabels(names, values []string, leName string, le float64) string {
	if len(names) == 0 && leName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if leName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leName)
		b.WriteString(`="`)
		if math.IsInf(le, 1) {
			b.WriteString("+Inf")
		} else {
			b.WriteString(formatFloat(le))
		}
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatUint(v uint64) string   { return strconv.FormatUint(v, 10) }
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
