package repro

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/client"
	"repro/internal/fastq"
	"repro/internal/kspectrum"
	"repro/internal/loadgen"
	"repro/internal/remote"
	"repro/internal/seq"
	"repro/internal/simulate"
)

// benchSpectrum builds the benchScale corpus spectrum once per leaf.
func benchSpectrum(b *testing.B) (*kspectrum.Spectrum, []seq.Read) {
	b.Helper()
	spec := simulate.Chapter2Specs(benchScale())[0] // D1
	ds := buildDataset(b, spec)
	reads := simulate.Reads(ds.Sim)
	built, err := kspectrum.Build(reads, 13, true)
	if err != nil {
		b.Fatal(err)
	}
	return built, reads
}

// benchRemoteBackend shards the spectrum across an in-process node and
// returns the coordinator-side fan-out backend — the loopback-network
// cost of the distributed deployment with zero real network latency, so
// the row isolates protocol overhead (JSON codec + HTTP round trip +
// scatter/gather) from wire time.
func benchRemoteBackend(b *testing.B, built *kspectrum.Spectrum, shards int) *remote.RemoteSpectrum {
	b.Helper()
	dir := b.TempDir()
	_, views, err := kspectrum.SplitShards(built, shards)
	if err != nil {
		b.Fatal(err)
	}
	loaded := make(map[string]*kspectrum.Spectrum)
	meta := make(map[string]remote.ShardInfo)
	for i, sh := range views {
		path := filepath.Join(dir, kspectrum.ShardFileName("main", i, shards))
		if err := kspectrum.WriteSpectrumFile(path, sh); err != nil {
			b.Fatal(err)
		}
		read, err := kspectrum.ReadSpectrumFile(path)
		if err != nil {
			b.Fatal(err)
		}
		entry := kspectrum.ShardEntryName("main", i, shards)
		loaded[entry] = read
		meta[entry] = remote.ShardInfo{
			Spectrum: "main", Shard: i, Of: shards, Entry: entry,
			K: read.K, BothStrands: read.BothStrands, Kmers: read.Size(),
		}
	}
	h, err := cli.NewHandler(loaded, cli.ServerOptions{Workers: 1, ShardEntries: meta})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(h)
	b.Cleanup(ts.Close)
	maps, err := remote.Discover(context.Background(), nil, []string{ts.URL})
	if err != nil {
		b.Fatal(err)
	}
	rs, err := remote.New(maps["main"], remote.Options{
		Policy: client.Policy{MaxRetries: 1, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond},
	})
	if err != nil {
		b.Fatal(err)
	}
	return rs
}

// BenchmarkBackendQuery prices the SpectrumBackend seam: the same
// 512-kmer CountMany batch answered by the in-memory backend, the mmap
// store, and the sharded remote backend over a loopback node. The first
// two rows bound what the seam itself costs (they were direct method
// calls before the refactor); the remote row is the per-batch price of
// distribution.
func BenchmarkBackendQuery(b *testing.B) {
	built, reads := benchSpectrum(b)

	// Query batch: kmers drawn from reads (mostly present, some absent),
	// the mix a correction pass generates.
	const batch = 512
	kms := make([]seq.Kmer, 0, batch)
	for _, rd := range reads {
		if len(kms) == batch {
			break
		}
		if len(rd.Seq) < built.K {
			continue
		}
		if km, ok := seq.Pack(rd.Seq[:built.K], built.K); ok {
			kms = append(kms, km)
		}
	}
	if len(kms) < batch/2 {
		b.Fatalf("only %d probe kmers from the corpus", len(kms))
	}
	counts := make([]uint32, len(kms))

	runLeg := func(b *testing.B, backend kspectrum.SpectrumBackend) {
		defer recordBench(b, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := backend.CountMany(kms, counts); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("inmem", func(b *testing.B) {
		runLeg(b, kspectrum.Local(built))
	})

	b.Run("mapped", func(b *testing.B) {
		path := filepath.Join(b.TempDir(), "bench.kspc")
		if err := kspectrum.WriteSpectrumFile(path, built); err != nil {
			b.Fatal(err)
		}
		mapped, err := kspectrum.OpenMapped(path)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { mapped.Close() })
		runLeg(b, kspectrum.Local(mapped))
	})

	b.Run("remote", func(b *testing.B) {
		rs := benchRemoteBackend(b, built, 4)
		b.Cleanup(func() { rs.Close() })
		runLeg(b, rs)
	})
}

// BenchmarkClusterLoadgen is the coordinator leg of the service rows:
// the daemon measured from the client side while every spectrum access
// fans out to shard-owning nodes over loopback. Comparable against
// BenchmarkServeLoadgen/steady — the gap is the distribution tax.
func BenchmarkClusterLoadgen(b *testing.B) {
	built, reads := benchSpectrum(b)
	rs := benchRemoteBackend(b, built, 4)
	b.Cleanup(func() { rs.Close() })

	h, err := cli.NewHandler(map[string]*kspectrum.Spectrum{}, cli.ServerOptions{
		Workers: 1, MaxInflight: 4,
		RemoteSpectra: map[string]*remote.RemoteSpectrum{"main": rs},
	})
	if err != nil {
		b.Fatal(err)
	}
	coord := httptest.NewServer(h)
	b.Cleanup(coord.Close)

	// Cluster chunks are small: every erroneous tile's neighborhood is a
	// fan-out HTTP round trip, so per-request cost is orders of magnitude
	// above the local daemon's — the leg measures that tax, not queueing.
	var chunks [][]byte
	const chunkReads = 20
	for at := 0; at < len(reads) && len(chunks) < 8; at += chunkReads {
		end := min(at+chunkReads, len(reads))
		body, err := fastq.EncodeChunk(reads[at:end])
		if err != nil {
			b.Fatal(err)
		}
		chunks = append(chunks, body)
	}

	var last loadgen.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := loadgen.Run(context.Background(), loadgen.Config{
			URL:         coord.URL + "/v2/correct?engine=reptile&spectrum=main",
			Chunks:      chunks,
			Concurrency: 4,
			Duration:    3 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.OK == 0 || rep.Server5xx != 0 || rep.Failed != 0 {
			b.Fatalf("cluster load failed: %s", rep)
		}
		last = rep
	}
	b.StopTimer()
	recordBench(b, map[string]float64{
		"requests": float64(last.Requests), "ok_per_sec": last.OKPerSec,
		"reads_per_sec": last.ReadsPerSec,
		"p50_ms":        last.P50Ms, "p90_ms": last.P90Ms, "p99_ms": last.P99Ms,
	})
	fmt.Printf("\ncluster/steady: %s\n", last)
}
